// Package telemetry is the structured observability layer of the
// reproduction: spans (monotonic wall-clock durations of the training
// step's phases — compute, compress, encode, the collective exchange,
// the optimizer apply — per worker, node and chunk) and counters
// (messages and bytes per directed link, steps, receive-wait time, dial
// retries) emitted to pluggable sinks.
//
// Three sinks ship: Aggregator keeps in-memory totals with percentile
// summaries and renders the Prometheus plaintext exposition format,
// JSONL streams one JSON object per event to a writer, and Handler
// serves an Aggregator over HTTP (/metrics, /healthz, /debug/pprof).
//
// The hot-path contract is that a nil *Tracer is a valid disabled
// tracer: Begin returns a zero Span, End and Count return immediately,
// and none of them allocate — instrumentation can stay unconditionally
// in tight loops (dist.Trainer.Step, cluster's collective schedules,
// the transports) at zero cost when telemetry is off. With a live
// tracer the built-in sinks are allocation-free in steady state too
// (guarded by AllocsPerRun tests).
//
// Exactness: counter events are integer deltas, so aggregated message
// and byte totals are exact — in instrumented runs they must equal
// cluster.Instrumented's counters and netsim's collective message
// formulas, which the cluster tests assert. Observability here is
// cross-checked against the analytic model, not merely plausible.
package telemetry

import (
	"time"
)

// SpanKind names a traced phase of the training loop.
type SpanKind uint8

const (
	// SpanStep is one full synchronous training step (dist.Trainer.Step).
	SpanStep SpanKind = iota
	// SpanCompute is one worker's batch draw + forward + backward pass.
	SpanCompute
	// SpanCompress is one worker's gradient compression (CompressInto).
	SpanCompress
	// SpanEncode is one wire encoding of a (chunk of a) selection.
	SpanEncode
	// SpanExchange is the trainer-side gradient exchange: the full
	// GradientExchange call, whichever strategy backs it.
	SpanExchange
	// SpanApply is the optimizer update (StepFlat).
	SpanApply
	// SpanCollective is one node's share of one collective round
	// (cluster's sched: ring / all-gather / parameter-server), or one
	// served round on the PS node.
	SpanCollective
	// SpanDial is a TCP link's connection establishment, retries
	// included.
	SpanDial
	// SpanSend is one message's occupancy of the sender's NIC on the
	// Instrumented virtual clock (EventVirtual only).
	SpanSend
	// SpanRecv is one message's occupancy of the receiver's NIC on the
	// Instrumented virtual clock (EventVirtual only).
	SpanRecv

	numSpanKinds
)

// String implements fmt.Stringer; the names are the JSONL and
// Prometheus label values.
func (k SpanKind) String() string {
	switch k {
	case SpanStep:
		return "step"
	case SpanCompute:
		return "compute"
	case SpanCompress:
		return "compress"
	case SpanEncode:
		return "encode"
	case SpanExchange:
		return "exchange"
	case SpanApply:
		return "apply"
	case SpanCollective:
		return "collective"
	case SpanDial:
		return "dial"
	case SpanSend:
		return "send"
	case SpanRecv:
		return "recv"
	default:
		return "unknown"
	}
}

// CounterKind names a monotonic counter. Link-attributed kinds carry
// the directed link in (Node, Peer) = (from, to); node-attributed kinds
// carry the owning node in Node.
type CounterKind uint8

const (
	// CounterSentMessages counts gradient-traffic messages sent on a
	// link (Node=from, Peer=to), at the same layer as
	// cluster.Instrumented — totals must match Instrumented.Totals().
	CounterSentMessages CounterKind = iota
	// CounterSentBytes counts gradient payload bytes sent on a link.
	CounterSentBytes
	// CounterRecvMessages counts gradient messages delivered on a link.
	CounterRecvMessages
	// CounterRecvBytes counts gradient payload bytes delivered on a link.
	CounterRecvBytes
	// CounterSteps counts completed training steps (Node = the
	// trainer's first global worker id).
	CounterSteps
	// CounterRecvWaitNanos accumulates wall-clock nanoseconds a node
	// (Node=to, Peer=from) spent blocked in Recv — the straggler +
	// network wait of the synchronous schedules.
	CounterRecvWaitNanos
	// CounterDialRetries counts failed TCP dial attempts that were
	// retried on a link (Node=from, Peer=to).
	CounterDialRetries
	// CounterWireSentBytes counts raw TCP bytes written on a link:
	// payloads plus the 4-byte frame headers plus the 12-byte
	// connection handshake.
	CounterWireSentBytes
	// CounterWireRecvBytes counts raw TCP bytes read on a link.
	CounterWireRecvBytes

	numCounterKinds
)

// String implements fmt.Stringer; the names are the JSONL and
// Prometheus label values.
func (k CounterKind) String() string {
	switch k {
	case CounterSentMessages:
		return "sent_messages"
	case CounterSentBytes:
		return "sent_bytes"
	case CounterRecvMessages:
		return "recv_messages"
	case CounterRecvBytes:
		return "recv_bytes"
	case CounterSteps:
		return "steps"
	case CounterRecvWaitNanos:
		return "recv_wait_nanos"
	case CounterDialRetries:
		return "dial_retries"
	case CounterWireSentBytes:
		return "wire_sent_bytes"
	case CounterWireRecvBytes:
		return "wire_recv_bytes"
	default:
		return "unknown"
	}
}

// EventType discriminates the event shapes.
type EventType uint8

const (
	// EventSpan is a completed span with a duration.
	EventSpan EventType = iota
	// EventCounter is a counter delta.
	EventCounter
	// EventVirtual is a completed window on cluster.Instrumented's
	// virtual alpha-beta clock: a send or receive occupying a NIC, a
	// compute or compress charge. Virtual times are float64 nanoseconds
	// since the virtual origin (exact dyadic arithmetic survives the
	// round-trip), carried in VStartNanos/VEndNanos; WallNanos still
	// records when the event was emitted. Trace assembly (traceview)
	// consumes these; the Aggregator ignores them.
	EventVirtual
)

// Event is one telemetry record. It is a plain value — sinks receive it
// by value and must not assume any backing storage.
type Event struct {
	// WallNanos is the event's wall-clock time (Unix nanoseconds),
	// derived from one monotonic reading so durations never go
	// backwards under clock adjustments.
	WallNanos int64
	// Type selects which of the remaining fields are meaningful.
	Type EventType
	// Span is the phase of an EventSpan.
	Span SpanKind
	// Counter is the counter of an EventCounter.
	Counter CounterKind
	// Node is the owning worker/node id (-1 when not attributed).
	Node int32
	// Peer is the link peer for link-attributed events, else -1.
	Peer int32
	// Chunk is the pipeline chunk index of chunked spans, else -1.
	Chunk int32
	// Step is the training iteration of step-scoped spans, else -1.
	Step int64
	// DurNanos is an EventSpan's monotonic duration.
	DurNanos int64
	// Value is an EventCounter's delta, an EventVirtual message's
	// payload bytes, or an EventSpan's kind-specific tag
	// (Span.WithValue; SpanEncode spans carry the wire encoding
	// format code).
	Value int64
	// Seq is the per-directed-link monotone sequence number of message
	// events (counters emitted through CountSeq and virtual send/recv
	// windows), -1 when the event is not a link message. Links are FIFO
	// in every transport of this repo, so (from, to, seq) pairs a send
	// with exactly one recv — the causal edge trace assembly needs.
	Seq int64
	// VStartNanos/VEndNanos bound an EventVirtual's busy window on the
	// virtual clock, in float64 nanoseconds since the virtual origin.
	// Both bounds are carried explicitly (not end+duration): the
	// producer converts exact virtual seconds to nanos with one
	// rounding each, so two events whose true times coincide stay
	// bitwise equal — the property trace assembly's exact causal
	// binding relies on.
	VStartNanos float64
	VEndNanos   float64
}

// Sink consumes events. Sinks must be safe for concurrent use: a
// Tracer fans events out from whichever goroutine produced them
// (worker goroutines, transport reader goroutines) without a global
// lock. The built-in sinks (Aggregator, JSONL) lock internally.
type Sink interface {
	Emit(Event)
}

// base anchors all monotonic readings: timestamps are base's wall time
// plus a monotonic offset, so durations are immune to wall-clock steps.
var base = time.Now() //sidco:nondet telemetry clock origin, timestamps never feed training math
var baseWall = base.UnixNano()

// Monotonic returns nanoseconds since an arbitrary fixed origin,
// strictly non-decreasing. Exposed so instrumentation outside this
// package (the transports' receive-wait accounting) can measure
// durations on the same clock spans use.
func Monotonic() int64 { return int64(time.Since(base)) } //sidco:nondet telemetry timestamps never feed training math

// Tracer fans events out to its sinks. The zero of *Tracer — nil — is
// the disabled tracer: every method is a no-op and allocation-free, so
// call sites never need an enabled check of their own.
type Tracer struct {
	sinks []Sink
}

// New builds a tracer over the given sinks. No sinks means every event
// is dropped (still a valid, enabled tracer; use nil for disabled).
func New(sinks ...Sink) *Tracer {
	return &Tracer{sinks: sinks}
}

// Enabled reports whether events are being recorded.
func (t *Tracer) Enabled() bool { return t != nil }

// Span is an in-flight traced phase. It is a value type: Begin/End
// pairs allocate nothing, and the zero Span (from a disabled tracer)
// is safe to End.
type Span struct {
	t     *Tracer
	start int64
	step  int64
	value int64
	kind  SpanKind
	node  int32
	peer  int32
	chunk int32
}

// WithValue attaches a span-kind-specific tag carried in the emitted
// Event's Value field: SpanEncode spans tag the wire encoding format
// code, so traces attribute encode time per format. Chainable on the
// Begin result and free on the zero Span (the value is simply dropped).
//
//sidco:hotpath
func (s Span) WithValue(v int64) Span {
	s.value = v
	return s
}

// Begin starts a span of the given kind. node, peer and chunk may be -1
// when the dimension does not apply; step is the training iteration or
// -1. On a nil tracer it returns the zero Span.
//
//sidco:hotpath
func (t *Tracer) Begin(kind SpanKind, node, peer, chunk int, step int64) Span {
	if t == nil {
		return Span{}
	}
	return Span{
		t:     t,
		start: Monotonic(),
		step:  step,
		kind:  kind,
		node:  int32(node),
		peer:  int32(peer),
		chunk: int32(chunk),
	}
}

// End completes the span and emits it. Safe on the zero Span.
//
//sidco:hotpath
func (s Span) End() {
	if s.t == nil {
		return
	}
	end := Monotonic()
	s.t.emit(Event{
		WallNanos: baseWall + end,
		Type:      EventSpan,
		Span:      s.kind,
		Node:      s.node,
		Peer:      s.peer,
		Chunk:     s.chunk,
		Step:      s.step,
		DurNanos:  end - s.start,
		Value:     s.value,
		Seq:       -1,
	})
}

// Count emits a counter delta. Link-attributed counters pass the
// directed link as (node, peer); node-attributed counters pass peer=-1.
// Zero deltas are dropped. No-op on a nil tracer.
//
//sidco:hotpath
func (t *Tracer) Count(kind CounterKind, node, peer int, delta int64) {
	t.CountSeq(kind, node, peer, delta, -1, -1)
}

// CountSeq is Count for per-message link counters: seq is the message's
// per-directed-link monotone sequence number and step the training
// iteration the message belongs to (-1 when unknown). Kinds that are
// not per-message pass through Count with seq = step = -1.
//
//sidco:hotpath
func (t *Tracer) CountSeq(kind CounterKind, node, peer int, delta, seq, step int64) {
	if t == nil || delta == 0 {
		return
	}
	t.emit(Event{
		WallNanos: baseWall + Monotonic(),
		Type:      EventCounter,
		Counter:   kind,
		Node:      int32(node),
		Peer:      int32(peer),
		Chunk:     -1,
		Step:      step,
		Value:     delta,
		Seq:       seq,
	})
}

// Virtual emits a completed window on the virtual alpha-beta clock.
// kind is SpanSend/SpanRecv for message NIC windows (node/peer the
// directed link owner-first: the sender for sends, the receiver for
// recvs; seq the link sequence; value the payload bytes) or
// SpanCompute/SpanCompress for charged work (peer = -1, seq = -1).
// startNanos/endNanos are float64 virtual nanoseconds. No-op on a nil
// tracer.
//
//sidco:hotpath
func (t *Tracer) Virtual(kind SpanKind, node, peer, chunk int, step, seq, value int64, startNanos, endNanos float64) {
	if t == nil {
		return
	}
	t.emit(Event{
		WallNanos:   baseWall + Monotonic(),
		Type:        EventVirtual,
		Span:        kind,
		Node:        int32(node),
		Peer:        int32(peer),
		Chunk:       int32(chunk),
		Step:        step,
		Value:       value,
		Seq:         seq,
		VStartNanos: startNanos,
		VEndNanos:   endNanos,
	})
}

//sidco:hotpath
func (t *Tracer) emit(e Event) {
	for _, s := range t.sinks {
		s.Emit(e)
	}
}
