package telemetry

import (
	"bufio"
	"io"
	"strconv"
	"sync"
)

// JSONL is the streaming Sink: one JSON object per event, one event
// per line, in the order events arrive at this sink. The schema is
// stable and documented in the README's Observability section:
//
//	{"ts":<unix-nanos>,"type":"span","span":"exchange","node":0,"peer":-1,"chunk":-1,"step":3,"dur_ns":152340}
//	{"ts":<unix-nanos>,"type":"counter","counter":"sent_bytes","node":0,"peer":1,"value":8192}
//
// Span events carry chunk, step and dur_ns; counter events carry
// value. node and peer are -1 when unattributed. Encoding is manual
// (strconv appends into a reused buffer), so the steady-state emit
// path allocates nothing; writes go through an internal bufio.Writer —
// call Flush (or Close on the owner of the underlying writer) once the
// tracer has quiesced.
type JSONL struct {
	mu  sync.Mutex
	w   *bufio.Writer
	buf []byte
	err error // sticky write failure
}

// NewJSONL builds a JSONL sink over w.
func NewJSONL(w io.Writer) *JSONL {
	return &JSONL{w: bufio.NewWriter(w), buf: make([]byte, 0, 256)}
}

// Emit implements Sink. Write failures are sticky and reported by
// Flush; telemetry must never fail the training run it observes.
func (j *JSONL) Emit(e Event) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return
	}
	b := j.buf[:0]
	b = append(b, `{"ts":`...)
	b = strconv.AppendInt(b, e.WallNanos, 10)
	if e.Type == EventSpan {
		b = append(b, `,"type":"span","span":"`...)
		b = append(b, e.Span.String()...)
	} else {
		b = append(b, `,"type":"counter","counter":"`...)
		b = append(b, e.Counter.String()...)
	}
	b = append(b, `","node":`...)
	b = strconv.AppendInt(b, int64(e.Node), 10)
	b = append(b, `,"peer":`...)
	b = strconv.AppendInt(b, int64(e.Peer), 10)
	if e.Type == EventSpan {
		b = append(b, `,"chunk":`...)
		b = strconv.AppendInt(b, int64(e.Chunk), 10)
		b = append(b, `,"step":`...)
		b = strconv.AppendInt(b, e.Step, 10)
		b = append(b, `,"dur_ns":`...)
		b = strconv.AppendInt(b, e.DurNanos, 10)
	} else {
		b = append(b, `,"value":`...)
		b = strconv.AppendInt(b, e.Value, 10)
	}
	b = append(b, '}', '\n')
	j.buf = b
	if _, err := j.w.Write(b); err != nil {
		j.err = err
	}
}

// Flush drains buffered lines to the underlying writer and returns the
// first write error the sink encountered, if any.
func (j *JSONL) Flush() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return j.err
	}
	j.err = j.w.Flush()
	return j.err
}
