package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"runtime"
	"strconv"
	"sync"
)

// SchemaVersion is the JSONL stream schema this package writes and
// DecodeJSONL understands. Version 2 added the leading meta record,
// per-message link sequence numbers (seq) and step tags on counter
// lines, and virtual-clock events.
const SchemaVersion = 2

// JSONL is the streaming Sink: a leading meta record that makes the
// stream self-describing, then one JSON object per event, one event per
// line, in the order events arrive at this sink. The schema is stable
// and documented in the README's Observability section:
//
//	{"type":"meta","schema":2,"node":0,"goos":"linux","goarch":"amd64","go":"go1.24","epoch_ns":<unix-nanos>}
//	{"ts":<unix-nanos>,"type":"span","span":"exchange","node":0,"peer":-1,"chunk":-1,"step":3,"dur_ns":152340}
//	{"ts":<unix-nanos>,"type":"counter","counter":"sent_bytes","node":0,"peer":1,"step":3,"seq":12,"value":8192}
//	{"ts":<unix-nanos>,"type":"virtual","span":"send","node":0,"peer":1,"chunk":-1,"step":3,"seq":12,"value":8192,"v_start_ns":976.5625,"v_end_ns":1953.125}
//
// Span events carry chunk, step and dur_ns; counter events carry step,
// seq and value (seq is the per-directed-link monotone message sequence,
// -1 when the counter is not a link message); virtual events carry the
// Instrumented alpha-beta clock window as float64 nanoseconds, printed
// with 'g'/-1 so the exact dyadic values round-trip. node and peer are
// -1 when unattributed. Encoding is manual (strconv appends into a
// reused buffer), so the steady-state emit path allocates nothing;
// writes go through an internal bufio.Writer — call Flush (or Close on
// the owner of the underlying writer) once the tracer has quiesced.
type JSONL struct {
	mu  sync.Mutex
	w   *bufio.Writer // guarded by mu
	buf []byte        // guarded by mu
	err error         // guarded by mu; sticky write failure
}

// NewJSONL builds a JSONL sink over w with an unattributed meta record
// (node -1); use NewJSONLForNode for per-rank streams.
func NewJSONL(w io.Writer) *JSONL { return NewJSONLForNode(w, -1) }

// NewJSONLForNode builds a JSONL sink over w and immediately writes the
// meta record identifying the stream: schema version, owning node/rank,
// platform, and the wall-clock epoch (unix nanoseconds at the monotonic
// origin all ts fields are offsets from).
func NewJSONLForNode(w io.Writer, node int) *JSONL {
	j := &JSONL{w: bufio.NewWriter(w), buf: make([]byte, 0, 256)} //sidco:nolock constructor; j is not yet shared
	_, err := fmt.Fprintf(j.w, `{"type":"meta","schema":%d,"node":%d,"goos":%q,"goarch":%q,"go":%q,"epoch_ns":%d}`+"\n",
		SchemaVersion, node, runtime.GOOS, runtime.GOARCH, runtime.Version(), baseWall)
	j.err = err //sidco:nolock constructor; j is not yet shared
	return j
}

// Emit implements Sink. Write failures are sticky and reported by
// Flush; telemetry must never fail the training run it observes.
//
//sidco:hotpath
func (j *JSONL) Emit(e Event) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return
	}
	b := j.buf[:0]
	b = append(b, `{"ts":`...)
	b = strconv.AppendInt(b, e.WallNanos, 10)
	switch e.Type {
	case EventSpan:
		b = append(b, `,"type":"span","span":"`...)
		b = append(b, e.Span.String()...)
	case EventVirtual:
		b = append(b, `,"type":"virtual","span":"`...)
		b = append(b, e.Span.String()...)
	default:
		b = append(b, `,"type":"counter","counter":"`...)
		b = append(b, e.Counter.String()...)
	}
	b = append(b, `","node":`...)
	b = strconv.AppendInt(b, int64(e.Node), 10)
	b = append(b, `,"peer":`...)
	b = strconv.AppendInt(b, int64(e.Peer), 10)
	switch e.Type {
	case EventSpan:
		b = append(b, `,"chunk":`...)
		b = strconv.AppendInt(b, int64(e.Chunk), 10)
		b = append(b, `,"step":`...)
		b = strconv.AppendInt(b, e.Step, 10)
		b = append(b, `,"dur_ns":`...)
		b = strconv.AppendInt(b, e.DurNanos, 10)
	case EventVirtual:
		b = append(b, `,"chunk":`...)
		b = strconv.AppendInt(b, int64(e.Chunk), 10)
		b = append(b, `,"step":`...)
		b = strconv.AppendInt(b, e.Step, 10)
		b = append(b, `,"seq":`...)
		b = strconv.AppendInt(b, e.Seq, 10)
		b = append(b, `,"value":`...)
		b = strconv.AppendInt(b, e.Value, 10)
		b = append(b, `,"v_start_ns":`...)
		b = strconv.AppendFloat(b, e.VStartNanos, 'g', -1, 64)
		b = append(b, `,"v_end_ns":`...)
		b = strconv.AppendFloat(b, e.VEndNanos, 'g', -1, 64)
	default:
		b = append(b, `,"step":`...)
		b = strconv.AppendInt(b, e.Step, 10)
		b = append(b, `,"seq":`...)
		b = strconv.AppendInt(b, e.Seq, 10)
		b = append(b, `,"value":`...)
		b = strconv.AppendInt(b, e.Value, 10)
	}
	b = append(b, '}', '\n')
	j.buf = b
	if _, err := j.w.Write(b); err != nil {
		j.err = err
	}
}

// Flush drains buffered lines to the underlying writer and returns the
// first write error the sink encountered, if any.
func (j *JSONL) Flush() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return j.err
	}
	j.err = j.w.Flush()
	return j.err
}
