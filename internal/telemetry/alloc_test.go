package telemetry

import (
	"io"
	"testing"
)

// TestDisabledTracerZeroAllocs is the hot-path acceptance criterion: a
// nil tracer's Begin/End/Count must allocate nothing, so the
// instrumentation can live unconditionally inside dist.Trainer.Step and
// the cluster schedules without costing the zero-alloc step budget.
func TestDisabledTracerZeroAllocs(t *testing.T) {
	var tr *Tracer
	allocs := testing.AllocsPerRun(1000, func() {
		sp := tr.Begin(SpanStep, 0, -1, -1, 7)
		tr.Count(CounterSentMessages, 0, 1, 1)
		tr.Count(CounterSentBytes, 0, 1, 4096)
		tr.CountSeq(CounterRecvMessages, 0, 1, 1, 3, 7)
		tr.Virtual(SpanSend, 0, 1, -1, 7, 3, 4096, 976.5625, 1953.125)
		inner := tr.Begin(SpanExchange, 0, 1, 2, 7)
		inner.End()
		sp.End()
	})
	if allocs != 0 {
		t.Errorf("disabled tracer allocates %.1f/op, want 0", allocs)
	}
}

// TestEnabledTracerSteadyStateZeroAllocs pins the enabled budget: after
// warm-up (ring buffers sized, link/node map entries created, JSONL
// scratch grown) the emit path through both built-in sinks is
// allocation-free too.
func TestEnabledTracerSteadyStateZeroAllocs(t *testing.T) {
	agg := NewAggregator()
	j := NewJSONL(io.Discard)
	tr := New(agg, j)
	emit := func() {
		sp := tr.Begin(SpanStep, 0, -1, -1, 7)
		tr.Count(CounterSentMessages, 0, 1, 1)
		tr.Count(CounterSentBytes, 0, 1, 4096)
		tr.CountSeq(CounterRecvMessages, 0, 1, 1, 3, 7)
		tr.Virtual(SpanSend, 0, 1, -1, 7, 3, 4096, 976.5625, 1953.125)
		inner := tr.Begin(SpanExchange, 0, 1, 2, 7)
		inner.End()
		sp.End()
	}
	for i := 0; i < 100; i++ { // warm up rings, maps and buffers
		emit()
	}
	if allocs := testing.AllocsPerRun(1000, emit); allocs != 0 {
		t.Errorf("enabled tracer allocates %.1f/op in steady state, want 0", allocs)
	}
}
