package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// ringCap bounds the per-span-kind duration samples kept for percentile
// summaries: a fixed ring of the most recent samples, so a long run's
// memory stays bounded and the enabled hot path stays allocation-free
// after the ring's one-time allocation. Counts and sums cover every
// event regardless.
const ringCap = 4096

// spanStats accumulates one span kind.
type spanStats struct {
	count   int64
	sum     int64 // nanoseconds
	max     int64
	dropped int64   // samples overwritten in the ring (outside the percentile window)
	ring    []int64 // most recent ringCap durations
	pos     int
	full    bool
}

//sidco:hotpath
func (s *spanStats) add(durNS int64) {
	s.count++
	s.sum += durNS
	if durNS > s.max {
		s.max = durNS
	}
	if s.ring == nil {
		s.ring = make([]int64, 0, ringCap) //sidco:alloc one-time ring allocation on a span kind's first sample
	}
	if len(s.ring) < ringCap {
		s.ring = append(s.ring, durNS)
		return
	}
	s.full = true
	s.dropped++
	s.ring[s.pos] = durNS
	s.pos++
	if s.pos == ringCap {
		s.pos = 0
	}
}

// Link names a directed link in aggregated link counters.
type Link struct{ From, To int32 }

// LinkCounters is the aggregated traffic of one directed link.
type LinkCounters struct {
	SentMessages  int64
	SentBytes     int64
	RecvMessages  int64
	RecvBytes     int64
	WireSentBytes int64
	WireRecvBytes int64
	DialRetries   int64
}

// NodeCounters is the aggregated node-attributed counters of one node.
type NodeCounters struct {
	Steps         int64
	RecvWaitNanos int64
}

// SpanSummary is one span kind's aggregate, with percentiles over the
// retained sample ring. Dropped counts the samples the bounded ring has
// overwritten: when it is non-zero the percentiles describe a recent
// window, not the whole run (Count, Sum and Max always cover
// everything).
type SpanSummary struct {
	Kind    SpanKind
	Count   int64
	Dropped int64
	Sum     time.Duration
	P50     time.Duration
	P90     time.Duration
	P99     time.Duration
	Max     time.Duration
}

// Aggregator is the in-memory Sink: exact counter totals (per kind,
// per link, per node) and span duration summaries with percentiles.
// It is safe for concurrent use — WritePrometheus may run while events
// stream in, which is exactly what a live /metrics endpoint does.
type Aggregator struct {
	mu     sync.Mutex
	spans  [numSpanKinds]spanStats // guarded by mu
	totals [numCounterKinds]int64  // guarded by mu
	links  map[Link]*LinkCounters  // guarded by mu
	nodes  map[int32]*NodeCounters // guarded by mu
}

// NewAggregator returns an empty aggregator.
func NewAggregator() *Aggregator {
	return &Aggregator{
		links: make(map[Link]*LinkCounters),
		nodes: make(map[int32]*NodeCounters),
	}
}

// Emit implements Sink.
//
//sidco:hotpath
func (a *Aggregator) Emit(e Event) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if e.Type == EventSpan {
		if e.Span < numSpanKinds {
			a.spans[e.Span].add(e.DurNanos)
		}
		return
	}
	if e.Type != EventCounter {
		// EventVirtual (and any future shape) carries no wall-clock
		// aggregate: virtual windows belong to trace assembly, not to
		// the live metrics surface.
		return
	}
	if e.Counter >= numCounterKinds {
		return
	}
	a.totals[e.Counter] += e.Value
	switch e.Counter {
	case CounterSentMessages, CounterSentBytes, CounterRecvMessages, CounterRecvBytes,
		CounterWireSentBytes, CounterWireRecvBytes, CounterDialRetries:
		lc := a.links[Link{e.Node, e.Peer}]
		if lc == nil {
			lc = &LinkCounters{} //sidco:alloc first sight of a link only; steady state hits the map
			a.links[Link{e.Node, e.Peer}] = lc
		}
		switch e.Counter {
		case CounterSentMessages:
			lc.SentMessages += e.Value
		case CounterSentBytes:
			lc.SentBytes += e.Value
		case CounterRecvMessages:
			lc.RecvMessages += e.Value
		case CounterRecvBytes:
			lc.RecvBytes += e.Value
		case CounterWireSentBytes:
			lc.WireSentBytes += e.Value
		case CounterWireRecvBytes:
			lc.WireRecvBytes += e.Value
		case CounterDialRetries:
			lc.DialRetries += e.Value
		}
	case CounterSteps, CounterRecvWaitNanos:
		nc := a.nodes[e.Node]
		if nc == nil {
			nc = &NodeCounters{} //sidco:alloc first sight of a node only; steady state hits the map
			a.nodes[e.Node] = nc
		}
		if e.Counter == CounterSteps {
			nc.Steps += e.Value
		} else {
			nc.RecvWaitNanos += e.Value
		}
	}
}

// Total returns the exact sum of one counter kind over all events.
func (a *Aggregator) Total(kind CounterKind) int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	if kind >= numCounterKinds {
		return 0
	}
	return a.totals[kind]
}

// LinkTotals returns one directed link's aggregated counters.
func (a *Aggregator) LinkTotals(from, to int) LinkCounters {
	a.mu.Lock()
	defer a.mu.Unlock()
	if lc := a.links[Link{int32(from), int32(to)}]; lc != nil {
		return *lc
	}
	return LinkCounters{}
}

// LinksSeen returns every directed link with recorded traffic, sorted
// by (from, to).
func (a *Aggregator) LinksSeen() []Link {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]Link, 0, len(a.links))
	for l := range a.links {
		out = append(out, l)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].From != out[j].From {
			return out[i].From < out[j].From
		}
		return out[i].To < out[j].To
	})
	return out
}

// NodeTotals returns one node's node-attributed counters.
func (a *Aggregator) NodeTotals(node int) NodeCounters {
	a.mu.Lock()
	defer a.mu.Unlock()
	if nc := a.nodes[int32(node)]; nc != nil {
		return *nc
	}
	return NodeCounters{}
}

// quantile reads the q-th quantile (0..1) from a sorted sample slice
// using the nearest-rank method.
func quantile(sorted []int64, q float64) int64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q*float64(len(sorted))+0.5) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// Spans returns a summary per span kind with at least one sample,
// in SpanKind order. Percentiles cover the retained ring (the most
// recent ringCap samples); Count, Sum and Max cover everything.
func (a *Aggregator) Spans() []SpanSummary {
	a.mu.Lock()
	defer a.mu.Unlock()
	var out []SpanSummary
	scratch := make([]int64, 0, ringCap)
	for k := SpanKind(0); k < numSpanKinds; k++ {
		st := &a.spans[k]
		if st.count == 0 {
			continue
		}
		scratch = append(scratch[:0], st.ring...)
		sort.Slice(scratch, func(i, j int) bool { return scratch[i] < scratch[j] })
		out = append(out, SpanSummary{
			Kind:    k,
			Count:   st.count,
			Dropped: st.dropped,
			Sum:     time.Duration(st.sum),
			P50:     time.Duration(quantile(scratch, 0.50)),
			P90:     time.Duration(quantile(scratch, 0.90)),
			P99:     time.Duration(quantile(scratch, 0.99)),
			Max:     time.Duration(st.max),
		})
	}
	return out
}

// Reset clears all aggregated state (between measured phases).
func (a *Aggregator) Reset() {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.spans = [numSpanKinds]spanStats{}
	a.totals = [numCounterKinds]int64{}
	a.links = make(map[Link]*LinkCounters)
	a.nodes = make(map[int32]*NodeCounters)
}

// seconds renders nanoseconds as a decimal seconds literal.
func seconds(ns int64) string {
	return strconv.FormatFloat(float64(ns)/1e9, 'g', -1, 64)
}

// WritePrometheus renders the aggregate in the Prometheus plaintext
// exposition format (version 0.0.4). Integer counters are rendered as
// exact integers, so a scrape — or ParseProm — recovers byte and
// message totals without loss; durations are rendered in seconds.
// Output order is deterministic (kinds in declaration order, links and
// nodes sorted).
func (a *Aggregator) WritePrometheus(w io.Writer) error {
	a.mu.Lock()
	// Snapshot under the lock, render outside it.
	spans := [numSpanKinds]spanStats{}
	for k := range a.spans {
		st := a.spans[k]
		st.ring = append([]int64(nil), st.ring...)
		spans[k] = st
	}
	totals := a.totals
	links := make([]Link, 0, len(a.links))
	for l := range a.links {
		links = append(links, l)
	}
	linkVals := make(map[Link]LinkCounters, len(a.links))
	for l, lc := range a.links {
		linkVals[l] = *lc
	}
	nodes := make([]int32, 0, len(a.nodes))
	for n := range a.nodes {
		nodes = append(nodes, n)
	}
	nodeVals := make(map[int32]NodeCounters, len(a.nodes))
	for n, nc := range a.nodes {
		nodeVals[n] = *nc
	}
	a.mu.Unlock()

	sort.Slice(links, func(i, j int) bool {
		if links[i].From != links[j].From {
			return links[i].From < links[j].From
		}
		return links[i].To < links[j].To
	})
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })

	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# HELP sidco_span_duration_seconds Monotonic wall-clock span durations per phase.\n")
	fmt.Fprintf(bw, "# TYPE sidco_span_duration_seconds summary\n")
	scratch := make([]int64, 0, ringCap)
	for k := SpanKind(0); k < numSpanKinds; k++ {
		st := spans[k]
		if st.count == 0 {
			continue
		}
		scratch = append(scratch[:0], st.ring...)
		sort.Slice(scratch, func(i, j int) bool { return scratch[i] < scratch[j] })
		for _, q := range []struct {
			label string
			q     float64
		}{{"0.5", 0.50}, {"0.9", 0.90}, {"0.99", 0.99}} {
			fmt.Fprintf(bw, "sidco_span_duration_seconds{span=%q,quantile=%q} %s\n",
				k.String(), q.label, seconds(quantile(scratch, q.q)))
		}
		fmt.Fprintf(bw, "sidco_span_duration_seconds_sum{span=%q} %s\n", k.String(), seconds(st.sum))
		fmt.Fprintf(bw, "sidco_span_duration_seconds_count{span=%q} %d\n", k.String(), st.count)
	}
	fmt.Fprintf(bw, "# HELP sidco_span_samples_dropped_total Span duration samples overwritten in the bounded percentile ring; non-zero means the quantiles above cover a recent window, not the whole run.\n")
	fmt.Fprintf(bw, "# TYPE sidco_span_samples_dropped_total counter\n")
	for k := SpanKind(0); k < numSpanKinds; k++ {
		if spans[k].count == 0 {
			continue
		}
		fmt.Fprintf(bw, "sidco_span_samples_dropped_total{span=%q} %d\n", k.String(), spans[k].dropped)
	}

	writeTotal := func(name, help string, v int64) {
		fmt.Fprintf(bw, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	writeTotal("sidco_sent_messages_total", "Gradient messages sent (all links).", totals[CounterSentMessages])
	writeTotal("sidco_sent_bytes_total", "Gradient payload bytes sent (all links).", totals[CounterSentBytes])
	writeTotal("sidco_recv_messages_total", "Gradient messages received (all links).", totals[CounterRecvMessages])
	writeTotal("sidco_recv_bytes_total", "Gradient payload bytes received (all links).", totals[CounterRecvBytes])
	writeTotal("sidco_steps_total", "Completed training steps.", totals[CounterSteps])
	writeTotal("sidco_dial_retries_total", "Retried TCP dial attempts.", totals[CounterDialRetries])
	writeTotal("sidco_wire_sent_bytes_total", "Raw TCP bytes written (payload + framing + handshake).", totals[CounterWireSentBytes])
	writeTotal("sidco_wire_recv_bytes_total", "Raw TCP bytes read (payload + framing + handshake).", totals[CounterWireRecvBytes])
	fmt.Fprintf(bw, "# HELP sidco_recv_wait_seconds_total Wall-clock time blocked in Recv (straggler + network wait).\n")
	fmt.Fprintf(bw, "# TYPE sidco_recv_wait_seconds_total counter\n")
	fmt.Fprintf(bw, "sidco_recv_wait_seconds_total %s\n", seconds(totals[CounterRecvWaitNanos]))

	if len(links) > 0 {
		fmt.Fprintf(bw, "# HELP sidco_link_sent_bytes_total Gradient payload bytes sent per directed link.\n")
		fmt.Fprintf(bw, "# TYPE sidco_link_sent_bytes_total counter\n")
		for _, l := range links {
			lc := linkVals[l]
			if lc.SentMessages == 0 && lc.SentBytes == 0 {
				continue
			}
			fmt.Fprintf(bw, "sidco_link_sent_bytes_total{from=\"%d\",to=\"%d\"} %d\n", l.From, l.To, lc.SentBytes)
		}
		fmt.Fprintf(bw, "# HELP sidco_link_sent_messages_total Gradient messages sent per directed link.\n")
		fmt.Fprintf(bw, "# TYPE sidco_link_sent_messages_total counter\n")
		for _, l := range links {
			lc := linkVals[l]
			if lc.SentMessages == 0 {
				continue
			}
			fmt.Fprintf(bw, "sidco_link_sent_messages_total{from=\"%d\",to=\"%d\"} %d\n", l.From, l.To, lc.SentMessages)
		}
		fmt.Fprintf(bw, "# HELP sidco_link_recv_bytes_total Gradient payload bytes received per directed link.\n")
		fmt.Fprintf(bw, "# TYPE sidco_link_recv_bytes_total counter\n")
		for _, l := range links {
			lc := linkVals[l]
			if lc.RecvMessages == 0 && lc.RecvBytes == 0 {
				continue
			}
			fmt.Fprintf(bw, "sidco_link_recv_bytes_total{from=\"%d\",to=\"%d\"} %d\n", l.From, l.To, lc.RecvBytes)
		}
		fmt.Fprintf(bw, "# HELP sidco_link_recv_messages_total Gradient messages received per directed link.\n")
		fmt.Fprintf(bw, "# TYPE sidco_link_recv_messages_total counter\n")
		for _, l := range links {
			lc := linkVals[l]
			if lc.RecvMessages == 0 {
				continue
			}
			fmt.Fprintf(bw, "sidco_link_recv_messages_total{from=\"%d\",to=\"%d\"} %d\n", l.From, l.To, lc.RecvMessages)
		}
	}
	if len(nodes) > 0 {
		fmt.Fprintf(bw, "# HELP sidco_node_steps_total Completed training steps per node.\n")
		fmt.Fprintf(bw, "# TYPE sidco_node_steps_total counter\n")
		for _, n := range nodes {
			if nodeVals[n].Steps == 0 {
				continue
			}
			fmt.Fprintf(bw, "sidco_node_steps_total{node=\"%d\"} %d\n", n, nodeVals[n].Steps)
		}
		fmt.Fprintf(bw, "# HELP sidco_node_recv_wait_seconds_total Per-node wall-clock time blocked in Recv.\n")
		fmt.Fprintf(bw, "# TYPE sidco_node_recv_wait_seconds_total counter\n")
		for _, n := range nodes {
			if nodeVals[n].RecvWaitNanos == 0 {
				continue
			}
			fmt.Fprintf(bw, "sidco_node_recv_wait_seconds_total{node=\"%d\"} %s\n", n, seconds(nodeVals[n].RecvWaitNanos))
		}
	}
	return bw.Flush()
}

// ParseProm parses Prometheus plaintext exposition into a map from
// "name{labels}" (labels exactly as rendered, empty braces omitted) to
// value. Integer-rendered counters round-trip exactly (float64 is
// exact below 2^53). Comment and blank lines are skipped. The tests
// and cmd/sidco-node's -check use it to assert what an HTTP scrape of
// /metrics actually exported.
func ParseProm(text string) (map[string]float64, error) {
	out := make(map[string]float64)
	for ln, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			return nil, fmt.Errorf("telemetry: metrics line %d has no value: %q", ln+1, line)
		}
		v, err := strconv.ParseFloat(line[sp+1:], 64)
		if err != nil {
			return nil, fmt.Errorf("telemetry: metrics line %d: %w", ln+1, err)
		}
		out[line[:sp]] = v
	}
	return out, nil
}
