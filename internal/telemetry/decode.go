package telemetry

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
)

// Meta is a JSONL stream's leading self-description record.
type Meta struct {
	// Schema is the stream's schema version; DecodeJSONL rejects
	// versions it does not know.
	Schema int `json:"schema"`
	// Node is the rank/node the stream belongs to, -1 when the stream
	// aggregates several nodes (a single-process engine run).
	Node int `json:"node"`
	// GOOS/GOARCH/GoVersion identify the producing build.
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	GoVersion string `json:"go"`
	// EpochNanos is the producing process's wall clock (unix
	// nanoseconds) at its monotonic origin: every ts in the stream is
	// EpochNanos + a monotonic offset.
	EpochNanos int64 `json:"epoch_ns"`
}

// spanKindNames / counterKindNames invert the String methods so the
// decoder recovers kinds from their stable JSONL names.
var spanKindNames = func() map[string]SpanKind {
	m := make(map[string]SpanKind, numSpanKinds)
	for k := SpanKind(0); k < numSpanKinds; k++ {
		m[k.String()] = k
	}
	return m
}()

var counterKindNames = func() map[string]CounterKind {
	m := make(map[string]CounterKind, numCounterKinds)
	for k := CounterKind(0); k < numCounterKinds; k++ {
		m[k.String()] = k
	}
	return m
}()

// jsonlLine is the union of every field any v2 line may carry. Decoding
// is strict per line type: a second pass with DisallowUnknownFields
// into the type's own struct rejects stray fields, so schema drift
// fails loudly instead of being silently ignored.
type jsonlType struct {
	Type string `json:"type"`
}

type jsonlMeta struct {
	Type       string `json:"type"`
	Schema     int    `json:"schema"`
	Node       int    `json:"node"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	GoVersion  string `json:"go"`
	EpochNanos int64  `json:"epoch_ns"`
}

type jsonlSpan struct {
	TS    int64  `json:"ts"`
	Type  string `json:"type"`
	Span  string `json:"span"`
	Node  int32  `json:"node"`
	Peer  int32  `json:"peer"`
	Chunk int32  `json:"chunk"`
	Step  int64  `json:"step"`
	DurNS int64  `json:"dur_ns"`
}

type jsonlCounter struct {
	TS      int64  `json:"ts"`
	Type    string `json:"type"`
	Counter string `json:"counter"`
	Node    int32  `json:"node"`
	Peer    int32  `json:"peer"`
	Step    int64  `json:"step"`
	Seq     int64  `json:"seq"`
	Value   int64  `json:"value"`
}

type jsonlVirtual struct {
	TS       int64   `json:"ts"`
	Type     string  `json:"type"`
	Span     string  `json:"span"`
	Node     int32   `json:"node"`
	Peer     int32   `json:"peer"`
	Chunk    int32   `json:"chunk"`
	Step     int64   `json:"step"`
	Seq      int64   `json:"seq"`
	Value    int64   `json:"value"`
	VStartNS float64 `json:"v_start_ns"`
	VEndNS   float64 `json:"v_end_ns"`
}

func strictUnmarshal(line []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(line))
	dec.DisallowUnknownFields()
	return dec.Decode(v)
}

// DecodeJSONL reads one JSONL stream back into its meta record and
// events. The stream must be self-describing: the first line must be a
// meta record with a schema version this package knows (SchemaVersion),
// anything else — including pre-v2 streams without a meta line — is
// rejected. Decoding is strict: unknown line types, unknown span or
// counter names, and unknown fields are errors.
func DecodeJSONL(r io.Reader) (Meta, []Event, error) {
	var meta Meta
	var events []Event
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	n := 0
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		n++
		var head jsonlType
		if err := json.Unmarshal(line, &head); err != nil {
			return meta, nil, fmt.Errorf("telemetry: line %d: %w", n, err)
		}
		if n == 1 {
			if head.Type != "meta" {
				return meta, nil, fmt.Errorf("telemetry: line 1 is %q, want a meta record (pre-v%d stream?)", head.Type, SchemaVersion)
			}
			var m jsonlMeta
			if err := strictUnmarshal(line, &m); err != nil {
				return meta, nil, fmt.Errorf("telemetry: meta record: %w", err)
			}
			if m.Schema != SchemaVersion {
				return meta, nil, fmt.Errorf("telemetry: stream schema %d, this decoder knows %d", m.Schema, SchemaVersion)
			}
			meta = Meta{Schema: m.Schema, Node: m.Node, GOOS: m.GOOS, GOARCH: m.GOARCH, GoVersion: m.GoVersion, EpochNanos: m.EpochNanos}
			continue
		}
		switch head.Type {
		case "span":
			var l jsonlSpan
			if err := strictUnmarshal(line, &l); err != nil {
				return meta, nil, fmt.Errorf("telemetry: line %d: %w", n, err)
			}
			kind, ok := spanKindNames[l.Span]
			if !ok {
				return meta, nil, fmt.Errorf("telemetry: line %d: unknown span kind %q", n, l.Span)
			}
			events = append(events, Event{
				WallNanos: l.TS, Type: EventSpan, Span: kind,
				Node: l.Node, Peer: l.Peer, Chunk: l.Chunk,
				Step: l.Step, DurNanos: l.DurNS, Seq: -1,
			})
		case "counter":
			var l jsonlCounter
			if err := strictUnmarshal(line, &l); err != nil {
				return meta, nil, fmt.Errorf("telemetry: line %d: %w", n, err)
			}
			kind, ok := counterKindNames[l.Counter]
			if !ok {
				return meta, nil, fmt.Errorf("telemetry: line %d: unknown counter kind %q", n, l.Counter)
			}
			events = append(events, Event{
				WallNanos: l.TS, Type: EventCounter, Counter: kind,
				Node: l.Node, Peer: l.Peer, Chunk: -1,
				Step: l.Step, Value: l.Value, Seq: l.Seq,
			})
		case "virtual":
			var l jsonlVirtual
			if err := strictUnmarshal(line, &l); err != nil {
				return meta, nil, fmt.Errorf("telemetry: line %d: %w", n, err)
			}
			kind, ok := spanKindNames[l.Span]
			if !ok {
				return meta, nil, fmt.Errorf("telemetry: line %d: unknown span kind %q", n, l.Span)
			}
			events = append(events, Event{
				WallNanos: l.TS, Type: EventVirtual, Span: kind,
				Node: l.Node, Peer: l.Peer, Chunk: l.Chunk,
				Step: l.Step, Value: l.Value, Seq: l.Seq,
				VStartNanos: l.VStartNS, VEndNanos: l.VEndNS,
			})
		case "meta":
			return meta, nil, fmt.Errorf("telemetry: line %d: duplicate meta record", n)
		default:
			return meta, nil, fmt.Errorf("telemetry: line %d: unknown line type %q", n, head.Type)
		}
	}
	if err := sc.Err(); err != nil {
		return meta, nil, err
	}
	if n == 0 {
		return meta, nil, fmt.Errorf("telemetry: empty stream (no meta record)")
	}
	return meta, events, nil
}
