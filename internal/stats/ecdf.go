package stats

import (
	"math"
	"sort"
)

// ECDF is an empirical cumulative distribution function built from a
// sample. It supports evaluation, quantiles, Kolmogorov–Smirnov distance
// to a model distribution, and histogram export for the fitting figures.
type ECDF struct {
	sorted []float64
}

// NewECDF builds an ECDF from xs. The input is copied and sorted.
func NewECDF(xs []float64) *ECDF {
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	return &ECDF{sorted: s}
}

// Len returns the sample size.
func (e *ECDF) Len() int { return len(e.sorted) }

// At returns the empirical CDF value at x: the fraction of samples <= x.
func (e *ECDF) At(x float64) float64 {
	if len(e.sorted) == 0 {
		return math.NaN()
	}
	i := sort.SearchFloat64s(e.sorted, x)
	// SearchFloat64s returns the first index with sorted[i] >= x; advance
	// past equal elements so the CDF counts samples <= x.
	for i < len(e.sorted) && e.sorted[i] == x {
		i++
	}
	return float64(i) / float64(len(e.sorted))
}

// Quantile returns the empirical q-quantile with linear interpolation.
func (e *ECDF) Quantile(q float64) float64 {
	return QuantileSorted(e.sorted, q)
}

// KSDistance returns the Kolmogorov–Smirnov statistic sup_x |F_n(x) -
// F(x)| between the empirical CDF and the model distribution — the
// goodness-of-fit measure used by the Figure 2/8 fitting studies.
func (e *ECDF) KSDistance(d Distribution) float64 {
	n := len(e.sorted)
	if n == 0 {
		return math.NaN()
	}
	maxDiff := 0.0
	for i, x := range e.sorted {
		f := d.CDF(x)
		lo := float64(i) / float64(n)   // F_n just below x
		hi := float64(i+1) / float64(n) // F_n at x
		if diff := math.Abs(f - lo); diff > maxDiff {
			maxDiff = diff
		}
		if diff := math.Abs(f - hi); diff > maxDiff {
			maxDiff = diff
		}
	}
	return maxDiff
}

// Histogram bins the sample into nBins equal-width bins over [lo, hi] and
// returns the bin centers and normalized densities (integrating to one
// over the covered range). Samples outside [lo, hi] are dropped.
func (e *ECDF) Histogram(lo, hi float64, nBins int) (centers, density []float64) {
	if nBins <= 0 || hi <= lo {
		return nil, nil
	}
	counts := make([]int, nBins)
	total := 0
	width := (hi - lo) / float64(nBins)
	for _, x := range e.sorted {
		if x < lo || x > hi {
			continue
		}
		b := int((x - lo) / width)
		if b == nBins {
			b--
		}
		counts[b]++
		total++
	}
	centers = make([]float64, nBins)
	density = make([]float64, nBins)
	for i := range counts {
		centers[i] = lo + (float64(i)+0.5)*width
		if total > 0 {
			density[i] = float64(counts[i]) / (float64(total) * width)
		}
	}
	return centers, density
}

// Sorted returns the underlying sorted sample. Callers must not modify it.
func (e *ECDF) Sorted() []float64 { return e.sorted }
