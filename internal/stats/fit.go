package stats

import "math"

// FitExponentialAbs fits Exp(beta) to the absolute values of xs by maximum
// likelihood: beta-hat = mean|x| (Corollary 1.1). xs holds raw (signed)
// gradient values.
func FitExponentialAbs(xs []float64) Exponential {
	return Exponential{Scale: MeanAbs(xs)}
}

// FitExponentialShifted fits a shifted exponential to exceedance data:
// given |x| values all >= loc, it estimates the scale of |X| - loc ~
// Exp(beta) as mean(|x|) - loc (Corollary 2.1, eq. 11).
func FitExponentialShifted(absXS []float64, loc float64) Exponential {
	return Exponential{Scale: Mean(absXS) - loc}
}

// GammaParams holds the shape/scale estimates of a gamma fit.
type GammaParams struct {
	Shape float64
	Scale float64
}

// FitGammaAbs fits Gamma(alpha, beta) to the absolute values of xs using
// Minka's closed-form approximation to the MLE (eq. 16/27 in the paper):
//
//	s      = log(mean|x|) - mean(log|x|)
//	alpha  = (3 - s + sqrt((s-3)^2 + 24 s)) / (12 s)
//	beta   = mean|x| / alpha
//
// Zero entries are skipped in the log-mean (they carry no shape
// information); degenerate inputs produce NaN parameters, which callers
// treat as "fit unavailable".
func FitGammaAbs(xs []float64) GammaParams {
	mu := MeanAbs(xs)
	muLog := MeanLogAbs(xs)
	s := math.Log(mu) - muLog
	if !(s > 0) { // NaN or non-positive: data degenerate (constant or empty)
		return GammaParams{Shape: math.NaN(), Scale: math.NaN()}
	}
	alpha := (3 - s + math.Sqrt((s-3)*(s-3)+24*s)) / (12 * s)
	return GammaParams{Shape: alpha, Scale: mu / alpha}
}

// GPParams holds the shape/scale estimates of a generalized Pareto fit
// (location is supplied by the caller as the previous-stage threshold).
type GPParams struct {
	Shape float64
	Scale float64
}

// FitGPMoments fits GP(alpha, beta) by moment matching (Hosking & Wallis;
// eq. 8-9/29 in the paper) to data with the given mean and population
// variance of the (location-shifted) absolute values:
//
//	alpha = (1 - mu^2/sigma^2) / 2
//	beta  = mu (mu^2/sigma^2 + 1) / 2
//
// Valid when the first two moments exist, i.e. alpha < 1/2.
func FitGPMoments(mean, variance float64) GPParams {
	if !(variance > 0) || !(mean > 0) {
		return GPParams{Shape: math.NaN(), Scale: math.NaN()}
	}
	r := mean * mean / variance
	return GPParams{
		Shape: 0.5 * (1 - r),
		Scale: 0.5 * mean * (r + 1),
	}
}

// FitGPAbs fits GP(alpha, beta) by moment matching to the absolute values
// of xs (location zero).
func FitGPAbs(xs []float64) GPParams {
	mu, v := MeanVarAbs(xs)
	return FitGPMoments(mu, v)
}

// FitGPExceedance fits GP(alpha, beta) to exceedance magnitudes absXS (all
// >= loc) after shifting by loc, per Lemma 2: the moments are those of
// |g| - loc.
func FitGPExceedance(absXS []float64, loc float64) GPParams {
	if len(absXS) == 0 {
		return GPParams{Shape: math.NaN(), Scale: math.NaN()}
	}
	sum, sumSq := 0.0, 0.0
	for lo := 0; lo < len(absXS); lo += sumBlock {
		hi := lo + sumBlock
		if hi > len(absXS) {
			hi = len(absXS)
		}
		bs, bs2 := 0.0, 0.0
		for _, a := range absXS[lo:hi] {
			s := a - loc
			bs += s
			bs2 += s * s
		}
		sum += bs
		sumSq += bs2
	}
	n := float64(len(absXS))
	mean := sum / n
	variance := sumSq/n - mean*mean
	if variance < 0 {
		variance = 0
	}
	return FitGPMoments(mean, variance)
}

// FitGaussian fits a normal distribution to xs by maximum likelihood
// (sample mean and population standard deviation). The GaussianKSGD
// baseline uses this on raw gradients.
func FitGaussian(xs []float64) Gaussian {
	return Gaussian{Mu: Mean(xs), Sigma: StdDev(xs)}
}
