package stats

import (
	"math"
	"math/rand"
	"testing"
)

// TestParBitIdentity checks every Par reduction against its serial
// counterpart bit for bit at several parallelism levels: the fixed
// 4096-element block partials make the grouping independent of P.
func TestParBitIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{0, 1, 4095, 4096, 4097, 1<<17 + 311} {
		xs := make([]float64, n)
		for i := range xs {
			if rng.Intn(16) == 0 {
				xs[i] = 0
			} else {
				xs[i] = rng.NormFloat64() * math.Exp(rng.NormFloat64()*4)
			}
		}
		for _, p := range []int{2, 3, 8} {
			pp := &Par{P: p}
			bitEq := func(name string, got, want float64) {
				t.Helper()
				if math.Float64bits(got) != math.Float64bits(want) {
					t.Fatalf("n=%d p=%d: %s = %v, serial %v", n, p, name, got, want)
				}
			}
			bitEq("Mean", pp.Mean(xs), Mean(xs))
			bitEq("MeanAbs", pp.MeanAbs(xs), MeanAbs(xs))
			bitEq("MeanLogAbs", pp.MeanLogAbs(xs), MeanLogAbs(xs))
			bitEq("Variance", pp.Variance(xs), Variance(xs))
			bitEq("MaxAbs", pp.MaxAbs(xs), MaxAbs(xs))
			gm, gv := pp.MeanVarAbs(xs)
			sm, sv := MeanVarAbs(xs)
			bitEq("MeanVarAbs mean", gm, sm)
			bitEq("MeanVarAbs var", gv, sv)
			pg, sg := pp.FitGPExceedance(xs, 0.01), FitGPExceedance(xs, 0.01)
			bitEq("FitGPExceedance shape", pg.Shape, sg.Shape)
			bitEq("FitGPExceedance scale", pg.Scale, sg.Scale)
			pga, sga := pp.FitGammaAbs(xs), FitGammaAbs(xs)
			bitEq("FitGammaAbs shape", pga.Shape, sga.Shape)
			bitEq("FitGammaAbs scale", pga.Scale, sga.Scale)
			pn, sn := pp.FitGaussian(xs), FitGaussian(xs)
			bitEq("FitGaussian mu", pn.Mu, sn.Mu)
			bitEq("FitGaussian sigma", pn.Sigma, sn.Sigma)
		}
	}
}
