package stats

import (
	"math"
	"testing"
)

func TestECDFBasics(t *testing.T) {
	e := NewECDF([]float64{3, 1, 2, 2})
	if e.Len() != 4 {
		t.Fatalf("Len = %d", e.Len())
	}
	cases := []struct{ x, want float64 }{
		{0.5, 0}, {1, 0.25}, {1.5, 0.25}, {2, 0.75}, {3, 1}, {10, 1},
	}
	for _, c := range cases {
		if got := e.At(c.x); got != c.want {
			t.Errorf("At(%v) = %v, want %v", c.x, got, c.want)
		}
	}
}

func TestECDFEmpty(t *testing.T) {
	e := NewECDF(nil)
	if got := e.At(1); !math.IsNaN(got) {
		t.Errorf("empty At = %v, want NaN", got)
	}
	if got := e.KSDistance(Exponential{Scale: 1}); !math.IsNaN(got) {
		t.Errorf("empty KS = %v, want NaN", got)
	}
}

func TestECDFQuantileMatchesQuantile(t *testing.T) {
	xs := []float64{5, 1, 4, 2, 3}
	e := NewECDF(xs)
	for _, q := range []float64{0, 0.25, 0.5, 0.75, 1} {
		if got, want := e.Quantile(q), Quantile(xs, q); math.Abs(got-want) > 1e-12 {
			t.Errorf("Quantile(%v): %v vs %v", q, got, want)
		}
	}
}

func TestKSDistanceDiscriminates(t *testing.T) {
	// KS distance of exponential data should be small against the true
	// distribution and large against a badly-scaled one.
	xs := sampleN(Exponential{Scale: 1}, 20000, 11)
	e := NewECDF(xs)
	good := e.KSDistance(Exponential{Scale: 1})
	bad := e.KSDistance(Exponential{Scale: 5})
	if good > 0.02 {
		t.Errorf("KS against true distribution = %v, want < 0.02", good)
	}
	if bad < 0.3 {
		t.Errorf("KS against wrong scale = %v, want > 0.3", bad)
	}
	if bad <= good {
		t.Error("KS distance failed to discriminate")
	}
}

func TestKSDistanceExactSmallSample(t *testing.T) {
	// For a single point x with model CDF F, the KS statistic is
	// max(F(x), 1-F(x)).
	e := NewECDF([]float64{1})
	d := Exponential{Scale: 1}
	want := math.Max(d.CDF(1), 1-d.CDF(1))
	if got := e.KSDistance(d); math.Abs(got-want) > 1e-12 {
		t.Errorf("KS = %v, want %v", got, want)
	}
}

func TestHistogram(t *testing.T) {
	e := NewECDF([]float64{0.1, 0.2, 0.3, 0.6, 0.7, 0.9, 5 /* out of range */})
	centers, density := e.Histogram(0, 1, 2)
	if len(centers) != 2 || len(density) != 2 {
		t.Fatalf("unexpected lengths: %d %d", len(centers), len(density))
	}
	if centers[0] != 0.25 || centers[1] != 0.75 {
		t.Errorf("centers = %v", centers)
	}
	// 3 of 6 in-range samples per bin, width 0.5 -> density 1.0 each.
	if math.Abs(density[0]-1) > 1e-12 || math.Abs(density[1]-1) > 1e-12 {
		t.Errorf("density = %v", density)
	}
	// Total mass integrates to 1 over the covered range.
	sum := 0.0
	for _, d := range density {
		sum += d * 0.5
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("total mass = %v", sum)
	}
}

func TestHistogramDegenerate(t *testing.T) {
	e := NewECDF([]float64{1, 2})
	if c, d := e.Histogram(1, 1, 3); c != nil || d != nil {
		t.Error("hi <= lo should return nil")
	}
	if c, d := e.Histogram(0, 1, 0); c != nil || d != nil {
		t.Error("nBins <= 0 should return nil")
	}
}
