package stats

import "math"

// Running accumulates streaming mean and variance via Welford's algorithm.
// The zero value is ready to use. It backs the estimation-quality metric
// (mean ˆk/k with a 90% confidence interval) reported in every figure.
type Running struct {
	n    int
	mean float64
	m2   float64
}

// Add folds x into the accumulator.
func (r *Running) Add(x float64) {
	r.n++
	delta := x - r.mean
	r.mean += delta / float64(r.n)
	r.m2 += delta * (x - r.mean)
}

// N returns the number of observations.
func (r *Running) N() int { return r.n }

// Mean returns the running mean, or NaN before any observation.
func (r *Running) Mean() float64 {
	if r.n == 0 {
		return math.NaN()
	}
	return r.mean
}

// Variance returns the unbiased running sample variance, or NaN with fewer
// than two observations.
func (r *Running) Variance() float64 {
	if r.n < 2 {
		return math.NaN()
	}
	return r.m2 / float64(r.n-1)
}

// StdDev returns the running sample standard deviation.
func (r *Running) StdDev() float64 { return math.Sqrt(r.Variance()) }

// ConfidenceInterval returns the half-width of the normal-approximation
// confidence interval for the mean at the given confidence level in (0,1),
// e.g. 0.90 for the paper's 90% error bars. It returns 0 with fewer than
// two observations.
func (r *Running) ConfidenceInterval(level float64) float64 {
	if r.n < 2 || level <= 0 || level >= 1 {
		return 0
	}
	z := NormalQuantile(0.5 + level/2)
	return z * r.StdDev() / math.Sqrt(float64(r.n))
}

// Reset clears the accumulator.
func (r *Running) Reset() { *r = Running{} }

// EWMA is an exponentially-weighted moving average used to produce the
// "smoothed compression ratio" series of Figure 9. The zero value with
// Alpha set is ready to use.
type EWMA struct {
	// Alpha is the smoothing coefficient in (0, 1]; larger tracks faster.
	Alpha float64

	value float64
	seen  bool
}

// Add folds x into the average and returns the updated value.
func (e *EWMA) Add(x float64) float64 {
	if !e.seen {
		e.value = x
		e.seen = true
		return e.value
	}
	e.value = e.Alpha*x + (1-e.Alpha)*e.value
	return e.value
}

// Value returns the current average, or NaN before any observation.
func (e *EWMA) Value() float64 {
	if !e.seen {
		return math.NaN()
	}
	return e.value
}

// WindowMean is a fixed-size sliding-window mean, used by the stage
// adaptation logic (average ˆk over the last Q iterations).
type WindowMean struct {
	buf  []float64
	next int
	full bool
	sum  float64
}

// NewWindowMean creates a window of the given size (must be positive).
func NewWindowMean(size int) *WindowMean {
	if size <= 0 {
		panic("stats: window size must be positive")
	}
	return &WindowMean{buf: make([]float64, size)}
}

// Add inserts x, evicting the oldest value once the window is full.
func (w *WindowMean) Add(x float64) {
	if w.full {
		w.sum -= w.buf[w.next]
	}
	w.buf[w.next] = x
	w.sum += x
	w.next++
	if w.next == len(w.buf) {
		w.next = 0
		w.full = true
	}
}

// Mean returns the mean over the current window contents, or NaN when
// empty.
func (w *WindowMean) Mean() float64 {
	n := w.Count()
	if n == 0 {
		return math.NaN()
	}
	return w.sum / float64(n)
}

// Count returns the number of values currently in the window.
func (w *WindowMean) Count() int {
	if w.full {
		return len(w.buf)
	}
	return w.next
}

// Reset clears the window.
func (w *WindowMean) Reset() {
	w.next = 0
	w.full = false
	w.sum = 0
}
