package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMeanVarianceBasics(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if got := Mean(xs); got != 3 {
		t.Errorf("Mean = %v, want 3", got)
	}
	if got := Variance(xs); got != 2 {
		t.Errorf("Variance = %v, want 2", got)
	}
	if got := SampleVariance(xs); got != 2.5 {
		t.Errorf("SampleVariance = %v, want 2.5", got)
	}
	if got := StdDev(xs); math.Abs(got-math.Sqrt2) > 1e-12 {
		t.Errorf("StdDev = %v, want sqrt(2)", got)
	}
}

func TestEmptyInputsAreNaN(t *testing.T) {
	for name, got := range map[string]float64{
		"Mean":       Mean(nil),
		"Variance":   Variance(nil),
		"MeanAbs":    MeanAbs(nil),
		"MeanLogAbs": MeanLogAbs(nil),
		"MaxAbs":     MaxAbs(nil),
		"Quantile":   Quantile(nil, 0.5),
		"Kurtosis":   Kurtosis(nil),
	} {
		if !math.IsNaN(got) {
			t.Errorf("%s(nil) = %v, want NaN", name, got)
		}
	}
	if min, max := MinMax(nil); !math.IsNaN(min) || !math.IsNaN(max) {
		t.Errorf("MinMax(nil) = %v, %v", min, max)
	}
}

func TestMeanAbsAndMeanVarAbs(t *testing.T) {
	xs := []float64{-1, 2, -3, 4}
	if got := MeanAbs(xs); got != 2.5 {
		t.Errorf("MeanAbs = %v, want 2.5", got)
	}
	m, v := MeanVarAbs(xs)
	if m != 2.5 {
		t.Errorf("MeanVarAbs mean = %v, want 2.5", m)
	}
	wantVar := Variance([]float64{1, 2, 3, 4})
	if math.Abs(v-wantVar) > 1e-12 {
		t.Errorf("MeanVarAbs variance = %v, want %v", v, wantVar)
	}
}

func TestMeanVarAbsMatchesTwoPass(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				continue
			}
			xs = append(xs, math.Mod(x, 100))
		}
		if len(xs) == 0 {
			return true
		}
		m1, v1 := MeanVarAbs(xs)
		abs := make([]float64, len(xs))
		for i, x := range xs {
			abs[i] = math.Abs(x)
		}
		m2, v2 := Mean(abs), Variance(abs)
		scale := math.Max(1, math.Max(math.Abs(v1), math.Abs(v2)))
		return math.Abs(m1-m2) < 1e-9*math.Max(1, m2) && math.Abs(v1-v2) < 1e-7*scale
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMinMaxAndMaxAbs(t *testing.T) {
	xs := []float64{3, -7, 2, 5, -1}
	min, max := MinMax(xs)
	if min != -7 || max != 5 {
		t.Errorf("MinMax = %v, %v", min, max)
	}
	if got := MaxAbs(xs); got != 7 {
		t.Errorf("MaxAbs = %v, want 7", got)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	cases := []struct{ q, want float64 }{
		{0, 1}, {1, 4}, {0.5, 2.5}, {1.0 / 3, 2},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	if got := Quantile([]float64{9}, 0.7); got != 9 {
		t.Errorf("single-element quantile = %v", got)
	}
	if got := Quantile(xs, -0.1); !math.IsNaN(got) {
		t.Errorf("invalid q: %v", got)
	}
}

func TestQuantileUnsortedMatchesSorted(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	xs := make([]float64, 501)
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	e := NewECDF(xs)
	for _, q := range []float64{0.01, 0.25, 0.5, 0.75, 0.99} {
		a := Quantile(xs, q)
		b := QuantileSorted(e.Sorted(), q)
		if math.Abs(a-b) > 1e-12 {
			t.Errorf("q=%v: %v vs %v", q, a, b)
		}
	}
}

func TestKurtosis(t *testing.T) {
	// Laplace excess kurtosis is 3; Gaussian is 0.
	lap := sampleN(Laplace{Scale: 1}, 300000, 9)
	if k := Kurtosis(lap); math.Abs(k-3) > 0.35 {
		t.Errorf("Laplace kurtosis = %v, want ~3", k)
	}
	gau := sampleN(Gaussian{Mu: 0, Sigma: 1}, 300000, 10)
	if k := Kurtosis(gau); math.Abs(k) > 0.2 {
		t.Errorf("Gaussian kurtosis = %v, want ~0", k)
	}
	if k := Kurtosis([]float64{5, 5, 5}); !math.IsNaN(k) {
		t.Errorf("constant kurtosis = %v, want NaN", k)
	}
}

func TestMeanLogAbsSkipsZeros(t *testing.T) {
	got := MeanLogAbs([]float64{math.E, -math.E, 0, 0})
	if math.Abs(got-1) > 1e-12 {
		t.Errorf("MeanLogAbs = %v, want 1", got)
	}
	if got := MeanLogAbs([]float64{0, 0}); !math.IsNaN(got) {
		t.Errorf("all zeros: %v, want NaN", got)
	}
}
