package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRunningMatchesBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	xs := make([]float64, 1000)
	var r Running
	for i := range xs {
		xs[i] = rng.NormFloat64()*3 + 1
		r.Add(xs[i])
	}
	if r.N() != len(xs) {
		t.Fatalf("N = %d", r.N())
	}
	if math.Abs(r.Mean()-Mean(xs)) > 1e-10 {
		t.Errorf("mean: %v vs %v", r.Mean(), Mean(xs))
	}
	if math.Abs(r.Variance()-SampleVariance(xs)) > 1e-9 {
		t.Errorf("variance: %v vs %v", r.Variance(), SampleVariance(xs))
	}
}

func TestRunningEmptyAndReset(t *testing.T) {
	var r Running
	if !math.IsNaN(r.Mean()) {
		t.Error("empty mean should be NaN")
	}
	if !math.IsNaN(r.Variance()) {
		t.Error("empty variance should be NaN")
	}
	if r.ConfidenceInterval(0.9) != 0 {
		t.Error("empty CI should be 0")
	}
	r.Add(1)
	r.Add(2)
	r.Reset()
	if r.N() != 0 || !math.IsNaN(r.Mean()) {
		t.Error("reset did not clear")
	}
}

func TestRunningConfidenceInterval(t *testing.T) {
	var r Running
	for i := 0; i < 100; i++ {
		r.Add(float64(i % 2)) // mean 0.5, sd ~0.5025
	}
	ci := r.ConfidenceInterval(0.90)
	want := 1.6448536269514722 * r.StdDev() / 10
	if math.Abs(ci-want) > 1e-12 {
		t.Errorf("CI = %v, want %v", ci, want)
	}
	if r.ConfidenceInterval(0) != 0 || r.ConfidenceInterval(1) != 0 {
		t.Error("invalid level should give 0")
	}
}

func TestRunningCICoverage(t *testing.T) {
	// ~90% of 90% CIs over repeated draws should cover the true mean.
	rng := rand.New(rand.NewSource(13))
	const trials, perTrial = 400, 60
	covered := 0
	for trial := 0; trial < trials; trial++ {
		var r Running
		for i := 0; i < perTrial; i++ {
			r.Add(rng.NormFloat64() + 2)
		}
		ci := r.ConfidenceInterval(0.90)
		if math.Abs(r.Mean()-2) <= ci {
			covered++
		}
	}
	rate := float64(covered) / trials
	if rate < 0.84 || rate > 0.96 {
		t.Errorf("coverage rate = %v, want ~0.90", rate)
	}
}

func TestEWMA(t *testing.T) {
	e := EWMA{Alpha: 0.5}
	if !math.IsNaN(e.Value()) {
		t.Error("empty EWMA should be NaN")
	}
	if got := e.Add(4); got != 4 {
		t.Errorf("first Add = %v, want 4", got)
	}
	if got := e.Add(0); got != 2 {
		t.Errorf("second Add = %v, want 2", got)
	}
	if got := e.Add(2); got != 2 {
		t.Errorf("third Add = %v, want 2", got)
	}
}

func TestEWMAConvergesToConstant(t *testing.T) {
	e := EWMA{Alpha: 0.1}
	for i := 0; i < 500; i++ {
		e.Add(7)
	}
	if math.Abs(e.Value()-7) > 1e-9 {
		t.Errorf("EWMA of constant = %v", e.Value())
	}
}

func TestWindowMean(t *testing.T) {
	w := NewWindowMean(3)
	if !math.IsNaN(w.Mean()) || w.Count() != 0 {
		t.Error("empty window state wrong")
	}
	w.Add(1)
	w.Add(2)
	if w.Mean() != 1.5 || w.Count() != 2 {
		t.Errorf("partial window: mean=%v count=%d", w.Mean(), w.Count())
	}
	w.Add(3)
	if w.Mean() != 2 || w.Count() != 3 {
		t.Errorf("full window: mean=%v count=%d", w.Mean(), w.Count())
	}
	w.Add(10) // evicts 1 -> {2,3,10}
	if w.Mean() != 5 {
		t.Errorf("after eviction: mean=%v", w.Mean())
	}
	w.Reset()
	if w.Count() != 0 || !math.IsNaN(w.Mean()) {
		t.Error("reset did not clear window")
	}
}

func TestWindowMeanMatchesNaive(t *testing.T) {
	f := func(raw []float64, sizeRaw uint8) bool {
		size := int(sizeRaw%16) + 1
		w := NewWindowMean(size)
		var hist []float64
		for _, x := range raw {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				continue
			}
			x = math.Mod(x, 1000)
			w.Add(x)
			hist = append(hist, x)
			lo := 0
			if len(hist) > size {
				lo = len(hist) - size
			}
			want := Mean(hist[lo:])
			if math.Abs(w.Mean()-want) > 1e-6*math.Max(1, math.Abs(want)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWindowMeanPanicsOnBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for size 0")
		}
	}()
	NewWindowMean(0)
}
