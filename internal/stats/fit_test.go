package stats

import (
	"math"
	"math/rand"
	"testing"
)

func sampleN(d Distribution, n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = d.Sample(rng)
	}
	return xs
}

func TestFitExponentialAbsRecoversScale(t *testing.T) {
	for _, beta := range []float64{0.01, 0.3, 2, 50} {
		xs := sampleN(Laplace{Scale: beta}, 100000, 1)
		fit := FitExponentialAbs(xs)
		if math.Abs(fit.Scale-beta)/beta > 0.03 {
			t.Errorf("beta=%v: fitted %v", beta, fit.Scale)
		}
	}
}

func TestFitExponentialShifted(t *testing.T) {
	// Exceedances of an exponential over a threshold are shifted
	// exponential with the same scale (memorylessness, Corollary 2.1).
	const beta, eta = 0.8, 1.2
	rng := rand.New(rand.NewSource(2))
	var exceed []float64
	for len(exceed) < 50000 {
		x := rng.ExpFloat64() * beta
		if x > eta {
			exceed = append(exceed, x)
		}
	}
	fit := FitExponentialShifted(exceed, eta)
	if math.Abs(fit.Scale-beta)/beta > 0.03 {
		t.Errorf("shifted fit: got scale %v, want %v", fit.Scale, beta)
	}
}

func TestFitGammaAbsRecoversParams(t *testing.T) {
	for _, c := range []struct{ shape, scale float64 }{
		{0.5, 1.0}, {0.8, 0.01}, {1.0, 2.0}, {2.5, 0.5},
	} {
		xs := sampleN(DoubleGamma{Shape: c.shape, Scale: c.scale}, 120000, 3)
		fit := FitGammaAbs(xs)
		if math.Abs(fit.Shape-c.shape)/c.shape > 0.05 {
			t.Errorf("shape=%v: fitted %v", c.shape, fit.Shape)
		}
		if math.Abs(fit.Scale-c.scale)/c.scale > 0.06 {
			t.Errorf("scale=%v: fitted %v", c.scale, fit.Scale)
		}
	}
}

func TestFitGammaAbsDegenerateInput(t *testing.T) {
	// Constant data gives s = 0, which has no gamma MLE; the fitter must
	// signal that with NaN rather than returning garbage.
	fit := FitGammaAbs([]float64{2, 2, 2, 2})
	if !math.IsNaN(fit.Shape) {
		t.Errorf("constant data: shape = %v, want NaN", fit.Shape)
	}
	fit = FitGammaAbs(nil)
	if !math.IsNaN(fit.Shape) {
		t.Errorf("empty data: shape = %v, want NaN", fit.Shape)
	}
	fit = FitGammaAbs([]float64{0, 0, 0})
	if !math.IsNaN(fit.Shape) {
		t.Errorf("all-zero data: shape = %v, want NaN", fit.Shape)
	}
}

func TestFitGammaSkipsZeros(t *testing.T) {
	// Adding exact zeros must not poison the fit with log(0).
	xs := sampleN(DoubleGamma{Shape: 0.9, Scale: 1}, 50000, 4)
	withZeros := append(append([]float64{}, xs...), make([]float64, 1000)...)
	fit := FitGammaAbs(withZeros)
	if math.IsNaN(fit.Shape) || math.IsInf(fit.Shape, 0) {
		t.Errorf("zeros poisoned the gamma fit: shape=%v", fit.Shape)
	}
}

func TestFitGPMomentsRecoversParams(t *testing.T) {
	for _, c := range []struct{ shape, scale float64 }{
		{0.3, 1.0}, {0.1, 0.02}, {-0.2, 1.5}, {0.45, 0.7},
	} {
		xs := sampleN(DoubleGP{Shape: c.shape, Scale: c.scale}, 400000, 5)
		fit := FitGPAbs(xs)
		// Moment matching has higher variance than MLE, especially as
		// shape -> 1/2 where the second moment blows up.
		tol := 0.12
		if c.shape > 0.4 {
			tol = 0.35
		}
		if math.Abs(fit.Shape-c.shape) > tol {
			t.Errorf("shape=%v: fitted %v", c.shape, fit.Shape)
		}
		if math.Abs(fit.Scale-c.scale)/c.scale > tol {
			t.Errorf("scale=%v: fitted %v", c.scale, fit.Scale)
		}
	}
}

func TestFitGPMomentsFormula(t *testing.T) {
	// Spot-check against the closed form: for mu=1, sigma^2=2,
	// alpha = (1 - 1/2)/2 = 0.25, beta = (1/2 + 1)/2 = 0.75.
	fit := FitGPMoments(1, 2)
	if math.Abs(fit.Shape-0.25) > 1e-12 || math.Abs(fit.Scale-0.75) > 1e-12 {
		t.Errorf("FitGPMoments(1,2) = %+v, want {0.25 0.75}", fit)
	}
}

func TestFitGPMomentsDegenerate(t *testing.T) {
	if fit := FitGPMoments(0, 1); !math.IsNaN(fit.Shape) {
		t.Errorf("zero mean: %+v", fit)
	}
	if fit := FitGPMoments(1, 0); !math.IsNaN(fit.Shape) {
		t.Errorf("zero variance: %+v", fit)
	}
	if fit := FitGPExceedance(nil, 1); !math.IsNaN(fit.Shape) {
		t.Errorf("empty exceedance: %+v", fit)
	}
}

func TestFitGPExceedanceRecoversTail(t *testing.T) {
	// Exceedances of a GP over a threshold are GP with the same shape
	// (threshold stability of the GP family, Lemma 2).
	const shape, scale = 0.25, 1.0
	gp := GeneralizedPareto{Shape: shape, Scale: scale, Loc: 0}
	rng := rand.New(rand.NewSource(6))
	const eta = 2.0
	var exceed []float64
	for len(exceed) < 200000 {
		x := gp.Sample(rng)
		if x > eta {
			exceed = append(exceed, x)
		}
	}
	fit := FitGPExceedance(exceed, eta)
	if math.Abs(fit.Shape-shape) > 0.05 {
		t.Errorf("tail shape: got %v, want %v", fit.Shape, shape)
	}
	// Theoretical exceedance scale: beta + alpha*eta.
	wantScale := scale + shape*eta
	if math.Abs(fit.Scale-wantScale)/wantScale > 0.08 {
		t.Errorf("tail scale: got %v, want %v", fit.Scale, wantScale)
	}
}

func TestFitGaussianRecoversParams(t *testing.T) {
	xs := sampleN(Gaussian{Mu: 1.5, Sigma: 0.7}, 100000, 7)
	fit := FitGaussian(xs)
	if math.Abs(fit.Mu-1.5) > 0.02 || math.Abs(fit.Sigma-0.7) > 0.02 {
		t.Errorf("gaussian fit: %+v", fit)
	}
}

func TestGammaApproxThresholdCloseToExact(t *testing.T) {
	// The paper's closed-form gamma threshold (eq. 15) should be within a
	// modest factor of the exact inverse-CDF threshold for shape near 1.
	for _, alpha := range []float64{0.7, 0.9, 1.0, 1.1} {
		for _, delta := range []float64{0.1, 0.01, 0.001} {
			g := Gamma{Shape: alpha, Scale: 1}
			exact := g.Quantile(1 - delta)
			approx := -1 * (math.Log(delta) + LogGamma(alpha))
			if alpha == 1 {
				if math.Abs(exact-approx) > 1e-8 {
					t.Errorf("alpha=1 delta=%v: exact %v approx %v should coincide", delta, exact, approx)
				}
				continue
			}
			ratio := approx / exact
			if ratio < 0.5 || ratio > 2 {
				t.Errorf("alpha=%v delta=%v: approx/exact = %v", alpha, delta, ratio)
			}
		}
	}
}
