package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRegularizedGammaPKnownValues(t *testing.T) {
	// Reference values from the identity P(1, x) = 1 - e^-x and
	// published tables for other shapes.
	cases := []struct {
		a, x, want float64
	}{
		{1, 1, 1 - math.Exp(-1)},
		{1, 0.5, 1 - math.Exp(-0.5)},
		{1, 5, 1 - math.Exp(-5)},
		{0.5, 0.5, math.Erf(math.Sqrt(0.5))}, // P(1/2, x) = erf(sqrt(x))
		{0.5, 2, math.Erf(math.Sqrt(2))},
		{2, 2, 1 - 3*math.Exp(-2)},   // P(2,x) = 1-(1+x)e^-x
		{3, 3, 1 - 8.5*math.Exp(-3)}, // P(3,x) = 1-(1+x+x^2/2)e^-x
		{10, 10, 0.5420702855281477}, // scipy.special.gammainc(10,10)
	}
	for _, c := range cases {
		got := RegularizedGammaP(c.a, c.x)
		if math.Abs(got-c.want) > 1e-12 {
			t.Errorf("RegularizedGammaP(%v, %v) = %v, want %v", c.a, c.x, got, c.want)
		}
	}
}

func TestRegularizedGammaPQComplementary(t *testing.T) {
	f := func(aRaw, xRaw float64) bool {
		a := 0.05 + math.Mod(math.Abs(aRaw), 20)
		x := math.Mod(math.Abs(xRaw), 40)
		p := RegularizedGammaP(a, x)
		q := RegularizedGammaQ(a, x)
		return math.Abs(p+q-1) < 1e-10
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRegularizedGammaPEdgeCases(t *testing.T) {
	if got := RegularizedGammaP(2, 0); got != 0 {
		t.Errorf("P(2,0) = %v, want 0", got)
	}
	if got := RegularizedGammaP(2, math.Inf(1)); got != 1 {
		t.Errorf("P(2,Inf) = %v, want 1", got)
	}
	if got := RegularizedGammaP(-1, 1); !math.IsNaN(got) {
		t.Errorf("P(-1,1) = %v, want NaN", got)
	}
	if got := RegularizedGammaQ(2, 0); got != 1 {
		t.Errorf("Q(2,0) = %v, want 1", got)
	}
}

func TestRegularizedGammaPMonotone(t *testing.T) {
	for _, a := range []float64{0.3, 0.7, 1, 2.5, 9} {
		prev := -1.0
		for x := 0.0; x < 30; x += 0.25 {
			p := RegularizedGammaP(a, x)
			if p < prev-1e-14 {
				t.Fatalf("P(%v, x) not monotone at x=%v: %v < %v", a, x, p, prev)
			}
			if p < 0 || p > 1 {
				t.Fatalf("P(%v, %v) = %v out of [0,1]", a, x, p)
			}
			prev = p
		}
	}
}

func TestInverseRegularizedGammaPRoundTrip(t *testing.T) {
	for _, a := range []float64{0.2, 0.5, 0.9, 1, 1.5, 3, 8, 25} {
		for _, p := range []float64{1e-6, 1e-3, 0.1, 0.5, 0.9, 0.99, 0.999, 0.999999} {
			x := InverseRegularizedGammaP(a, p)
			if x < 0 || math.IsNaN(x) {
				t.Fatalf("InverseRegularizedGammaP(%v, %v) = %v", a, p, x)
			}
			back := RegularizedGammaP(a, x)
			if math.Abs(back-p) > 1e-8 {
				t.Errorf("round trip a=%v p=%v: got P(a, x)=%v", a, p, back)
			}
		}
	}
}

func TestInverseRegularizedGammaPEdgeCases(t *testing.T) {
	if got := InverseRegularizedGammaP(2, 0); got != 0 {
		t.Errorf("inverse at p=0: got %v, want 0", got)
	}
	for _, bad := range []struct{ a, p float64 }{{-1, 0.5}, {2, -0.1}, {2, 1}, {2, 1.5}} {
		if got := InverseRegularizedGammaP(bad.a, bad.p); !math.IsNaN(got) {
			t.Errorf("inverse(%v, %v) = %v, want NaN", bad.a, bad.p, got)
		}
	}
}

func TestDigammaKnownValues(t *testing.T) {
	const gammaEuler = 0.57721566490153286061
	cases := []struct {
		x, want float64
	}{
		{1, -gammaEuler},
		{2, 1 - gammaEuler},
		{3, 1.5 - gammaEuler},
		{0.5, -gammaEuler - 2*math.Ln2},
		{10, 2.2517525890667211076}, // scipy.special.digamma(10)
	}
	for _, c := range cases {
		got := Digamma(c.x)
		if math.Abs(got-c.want) > 1e-10 {
			t.Errorf("Digamma(%v) = %v, want %v", c.x, got, c.want)
		}
	}
}

func TestDigammaRecurrence(t *testing.T) {
	// psi(x+1) = psi(x) + 1/x
	f := func(raw float64) bool {
		x := 0.1 + math.Mod(math.Abs(raw), 20)
		return math.Abs(Digamma(x+1)-Digamma(x)-1/x) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNormalQuantileKnownValues(t *testing.T) {
	cases := []struct {
		p, want float64
	}{
		{0.5, 0},
		{0.975, 1.959963984540054},
		{0.95, 1.6448536269514722},
		{0.9, 1.2815515655446004},
		{0.025, -1.959963984540054},
		{1e-6, -4.753424308822899},
	}
	for _, c := range cases {
		got := NormalQuantile(c.p)
		if math.Abs(got-c.want) > 1e-9 {
			t.Errorf("NormalQuantile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestNormalQuantileCDFRoundTrip(t *testing.T) {
	f := func(raw float64) bool {
		p := math.Mod(math.Abs(raw), 1)
		if p == 0 {
			p = 0.5
		}
		x := NormalQuantile(p)
		return math.Abs(NormalCDF(x)-p) < 1e-11
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNormalQuantileEdgeCases(t *testing.T) {
	if !math.IsInf(NormalQuantile(0), -1) {
		t.Error("NormalQuantile(0) should be -Inf")
	}
	if !math.IsInf(NormalQuantile(1), 1) {
		t.Error("NormalQuantile(1) should be +Inf")
	}
	if !math.IsNaN(NormalQuantile(-0.1)) || !math.IsNaN(NormalQuantile(1.1)) {
		t.Error("NormalQuantile outside [0,1] should be NaN")
	}
}

func TestLogGamma(t *testing.T) {
	if got := LogGamma(1); math.Abs(got) > 1e-15 {
		t.Errorf("LogGamma(1) = %v, want 0", got)
	}
	if got := LogGamma(5); math.Abs(got-math.Log(24)) > 1e-12 {
		t.Errorf("LogGamma(5) = %v, want log(24)", got)
	}
}
