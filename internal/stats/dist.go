package stats

import (
	"math"
	"math/rand"
)

// Distribution is a one-dimensional continuous distribution. All SIDCo
// threshold math flows through CDF/Quantile; Sample supports the synthetic
// gradient generator and the property tests.
type Distribution interface {
	// PDF returns the probability density at x.
	PDF(x float64) float64
	// CDF returns P(X <= x).
	CDF(x float64) float64
	// Quantile returns the inverse CDF at probability p in [0, 1].
	Quantile(p float64) float64
	// Mean returns the distribution mean (may be +Inf).
	Mean() float64
	// Sample draws one variate using rng.
	Sample(rng *rand.Rand) float64
}

// Exponential is the exponential distribution with scale beta (mean beta).
// It models the absolute value of Laplace-distributed gradients
// (Corollary 1.1): |G| ~ Exp(beta).
type Exponential struct {
	Scale float64 // beta > 0
}

// PDF implements Distribution.
func (e Exponential) PDF(x float64) float64 {
	if x < 0 {
		return 0
	}
	return math.Exp(-x/e.Scale) / e.Scale
}

// CDF implements Distribution.
func (e Exponential) CDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return -math.Expm1(-x / e.Scale)
}

// Quantile implements Distribution: F^-1(p) = -beta log(1-p).
func (e Exponential) Quantile(p float64) float64 {
	if p < 0 || p > 1 || math.IsNaN(p) {
		return math.NaN()
	}
	return -e.Scale * math.Log1p(-p)
}

// Mean implements Distribution.
func (e Exponential) Mean() float64 { return e.Scale }

// Sample implements Distribution.
func (e Exponential) Sample(rng *rand.Rand) float64 { return rng.ExpFloat64() * e.Scale }

// Laplace is the double exponential distribution, symmetric around zero
// with scale beta — the first of the paper's three sparsity-inducing
// distributions (Property 2).
type Laplace struct {
	Scale float64 // beta > 0
}

// PDF implements Distribution.
func (l Laplace) PDF(x float64) float64 {
	return math.Exp(-math.Abs(x)/l.Scale) / (2 * l.Scale)
}

// CDF implements Distribution.
func (l Laplace) CDF(x float64) float64 {
	if x < 0 {
		return 0.5 * math.Exp(x/l.Scale)
	}
	return 1 - 0.5*math.Exp(-x/l.Scale)
}

// Quantile implements Distribution.
func (l Laplace) Quantile(p float64) float64 {
	switch {
	case p < 0 || p > 1 || math.IsNaN(p):
		return math.NaN()
	case p < 0.5:
		return l.Scale * math.Log(2*p)
	default:
		return -l.Scale * math.Log(2*(1-p))
	}
}

// Mean implements Distribution.
func (l Laplace) Mean() float64 { return 0 }

// Abs returns the distribution of |X| for X ~ Laplace(beta), which is
// Exponential(beta).
func (l Laplace) Abs() Exponential { return Exponential{Scale: l.Scale} }

// Sample implements Distribution.
func (l Laplace) Sample(rng *rand.Rand) float64 {
	mag := rng.ExpFloat64() * l.Scale
	if rng.Intn(2) == 0 {
		return -mag
	}
	return mag
}

// Gamma is the gamma distribution with shape alpha and scale beta. With
// alpha <= 1 it models the absolute value of double-gamma distributed
// gradients (Corollary 1.2).
type Gamma struct {
	Shape float64 // alpha > 0
	Scale float64 // beta > 0
}

// PDF implements Distribution.
func (g Gamma) PDF(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x == 0 {
		switch {
		case g.Shape < 1:
			return math.Inf(1)
		case g.Shape == 1:
			return 1 / g.Scale
		default:
			return 0
		}
	}
	lg, _ := math.Lgamma(g.Shape)
	return math.Exp((g.Shape-1)*math.Log(x) - x/g.Scale - g.Shape*math.Log(g.Scale) - lg)
}

// CDF implements Distribution: F(x) = P(alpha, x/beta).
func (g Gamma) CDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return RegularizedGammaP(g.Shape, x/g.Scale)
}

// Quantile implements Distribution via the inverse regularized incomplete
// gamma function.
func (g Gamma) Quantile(p float64) float64 {
	if p < 0 || p > 1 || math.IsNaN(p) {
		return math.NaN()
	}
	if p == 1 {
		return math.Inf(1)
	}
	return g.Scale * InverseRegularizedGammaP(g.Shape, p)
}

// Mean implements Distribution.
func (g Gamma) Mean() float64 { return g.Shape * g.Scale }

// Sample implements Distribution using the Marsaglia–Tsang squeeze method,
// with the standard alpha < 1 boost.
func (g Gamma) Sample(rng *rand.Rand) float64 {
	alpha := g.Shape
	boost := 1.0
	if alpha < 1 {
		boost = math.Pow(rng.Float64(), 1/alpha)
		alpha++
	}
	d := alpha - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		var x, v float64
		for {
			x = rng.NormFloat64()
			v = 1 + c*x
			if v > 0 {
				break
			}
		}
		v = v * v * v
		u := rng.Float64()
		if u < 1-0.0331*x*x*x*x {
			return boost * d * v * g.Scale
		}
		if math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return boost * d * v * g.Scale
		}
	}
}

// DoubleGamma is the symmetric double gamma distribution: the sign is
// Rademacher and |X| ~ Gamma(alpha, beta). It is the second SID of
// Property 2.
type DoubleGamma struct {
	Shape float64
	Scale float64
}

// PDF implements Distribution.
func (d DoubleGamma) PDF(x float64) float64 {
	return 0.5 * Gamma{d.Shape, d.Scale}.PDF(math.Abs(x))
}

// CDF implements Distribution.
func (d DoubleGamma) CDF(x float64) float64 {
	g := Gamma{d.Shape, d.Scale}
	if x < 0 {
		return 0.5 * (1 - g.CDF(-x))
	}
	return 0.5 + 0.5*g.CDF(x)
}

// Quantile implements Distribution.
func (d DoubleGamma) Quantile(p float64) float64 {
	g := Gamma{d.Shape, d.Scale}
	switch {
	case p < 0 || p > 1 || math.IsNaN(p):
		return math.NaN()
	case p < 0.5:
		return -g.Quantile(1 - 2*p)
	default:
		return g.Quantile(2*p - 1)
	}
}

// Mean implements Distribution.
func (d DoubleGamma) Mean() float64 { return 0 }

// Abs returns the distribution of |X|: Gamma(alpha, beta).
func (d DoubleGamma) Abs() Gamma { return Gamma{d.Shape, d.Scale} }

// Sample implements Distribution.
func (d DoubleGamma) Sample(rng *rand.Rand) float64 {
	mag := Gamma{d.Shape, d.Scale}.Sample(rng)
	if rng.Intn(2) == 0 {
		return -mag
	}
	return mag
}

// GeneralizedPareto is the generalized Pareto distribution GP(alpha, beta,
// a) with shape alpha, scale beta and location a, in the paper's
// parameterisation (Corollary 1.3 and Lemma 2): for alpha != 0,
//
//	F(x) = 1 - (1 + alpha*(x-a)/beta)^(-1/alpha),  x >= a.
//
// alpha -> 0 degenerates to the shifted exponential. For alpha < 0 the
// support is bounded above at a - beta/alpha.
type GeneralizedPareto struct {
	Shape float64 // alpha, typically in (-1/2, 1/2)
	Scale float64 // beta > 0
	Loc   float64 // a
}

// PDF implements Distribution.
func (g GeneralizedPareto) PDF(x float64) float64 {
	z := (x - g.Loc) / g.Scale
	if z < 0 {
		return 0
	}
	if g.Shape == 0 {
		return math.Exp(-z) / g.Scale
	}
	t := 1 + g.Shape*z
	if t <= 0 {
		return 0
	}
	return math.Pow(t, -1/g.Shape-1) / g.Scale
}

// CDF implements Distribution.
func (g GeneralizedPareto) CDF(x float64) float64 {
	z := (x - g.Loc) / g.Scale
	if z <= 0 {
		return 0
	}
	if g.Shape == 0 {
		return -math.Expm1(-z)
	}
	t := 1 + g.Shape*z
	if t <= 0 {
		return 1 // above the upper support bound (alpha < 0)
	}
	return 1 - math.Pow(t, -1/g.Shape)
}

// Quantile implements Distribution:
// F^-1(p) = a + beta/alpha * ((1-p)^(-alpha) - 1).
func (g GeneralizedPareto) Quantile(p float64) float64 {
	if p < 0 || p > 1 || math.IsNaN(p) {
		return math.NaN()
	}
	if g.Shape == 0 {
		return g.Loc - g.Scale*math.Log1p(-p)
	}
	return g.Loc + g.Scale/g.Shape*math.Expm1(-g.Shape*math.Log1p(-p))
}

// Mean implements Distribution. The mean is finite only for alpha < 1.
func (g GeneralizedPareto) Mean() float64 {
	if g.Shape >= 1 {
		return math.Inf(1)
	}
	return g.Loc + g.Scale/(1-g.Shape)
}

// Sample implements Distribution by inverse-CDF sampling.
func (g GeneralizedPareto) Sample(rng *rand.Rand) float64 {
	return g.Quantile(rng.Float64())
}

// DoubleGP is the symmetric double generalized Pareto distribution around
// zero — the third SID of Property 2: sign Rademacher, |X| ~ GP(alpha,
// beta, 0).
type DoubleGP struct {
	Shape float64
	Scale float64
}

// PDF implements Distribution.
func (d DoubleGP) PDF(x float64) float64 {
	return 0.5 * GeneralizedPareto{d.Shape, d.Scale, 0}.PDF(math.Abs(x))
}

// CDF implements Distribution.
func (d DoubleGP) CDF(x float64) float64 {
	g := GeneralizedPareto{d.Shape, d.Scale, 0}
	if x < 0 {
		return 0.5 * (1 - g.CDF(-x))
	}
	return 0.5 + 0.5*g.CDF(x)
}

// Quantile implements Distribution.
func (d DoubleGP) Quantile(p float64) float64 {
	g := GeneralizedPareto{d.Shape, d.Scale, 0}
	switch {
	case p < 0 || p > 1 || math.IsNaN(p):
		return math.NaN()
	case p < 0.5:
		return -g.Quantile(1 - 2*p)
	default:
		return g.Quantile(2*p - 1)
	}
}

// Mean implements Distribution.
func (d DoubleGP) Mean() float64 { return 0 }

// Abs returns the distribution of |X|: GP(alpha, beta, 0).
func (d DoubleGP) Abs() GeneralizedPareto {
	return GeneralizedPareto{d.Shape, d.Scale, 0}
}

// Sample implements Distribution.
func (d DoubleGP) Sample(rng *rand.Rand) float64 {
	mag := GeneralizedPareto{d.Shape, d.Scale, 0}.Sample(rng)
	if rng.Intn(2) == 0 {
		return -mag
	}
	return mag
}

// Gaussian is the normal distribution, used by the GaussianKSGD baseline
// and by tests.
type Gaussian struct {
	Mu    float64
	Sigma float64
}

// PDF implements Distribution.
func (g Gaussian) PDF(x float64) float64 {
	z := (x - g.Mu) / g.Sigma
	return math.Exp(-z*z/2) / (g.Sigma * math.Sqrt(2*math.Pi))
}

// CDF implements Distribution.
func (g Gaussian) CDF(x float64) float64 {
	return NormalCDF((x - g.Mu) / g.Sigma)
}

// Quantile implements Distribution.
func (g Gaussian) Quantile(p float64) float64 {
	return g.Mu + g.Sigma*NormalQuantile(p)
}

// Mean implements Distribution.
func (g Gaussian) Mean() float64 { return g.Mu }

// Sample implements Distribution.
func (g Gaussian) Sample(rng *rand.Rand) float64 {
	return g.Mu + g.Sigma*rng.NormFloat64()
}
