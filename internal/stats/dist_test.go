package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// distCase bundles a distribution with a support range for generic checks.
type distCase struct {
	name string
	d    Distribution
	lo   float64 // left edge of interesting support for numeric checks
	hi   float64
}

func allDistCases() []distCase {
	return []distCase{
		{"Exponential", Exponential{Scale: 0.7}, 1e-4, 8},
		{"Laplace", Laplace{Scale: 0.4}, -5, 5},
		{"Gamma(0.6)", Gamma{Shape: 0.6, Scale: 1.3}, 1e-4, 10},
		{"Gamma(2.5)", Gamma{Shape: 2.5, Scale: 0.8}, 1e-4, 15},
		{"DoubleGamma", DoubleGamma{Shape: 0.7, Scale: 1.1}, -8, 8},
		{"GP(+0.3)", GeneralizedPareto{Shape: 0.3, Scale: 1.0, Loc: 0}, 1e-4, 20},
		{"GP(-0.3)", GeneralizedPareto{Shape: -0.3, Scale: 1.0, Loc: 0}, 1e-4, 3.2},
		{"GP(0,loc=2)", GeneralizedPareto{Shape: 0, Scale: 0.5, Loc: 2}, 2.001, 8},
		{"DoubleGP", DoubleGP{Shape: 0.2, Scale: 0.9}, -10, 10},
		{"Gaussian", Gaussian{Mu: 0.3, Sigma: 1.7}, -6, 7},
	}
}

func TestCDFMonotoneAndBounded(t *testing.T) {
	for _, c := range allDistCases() {
		prev := -1.0
		for i := 0; i <= 200; i++ {
			x := c.lo + (c.hi-c.lo)*float64(i)/200
			p := c.d.CDF(x)
			if p < prev-1e-12 {
				t.Errorf("%s: CDF not monotone at x=%v (%v < %v)", c.name, x, p, prev)
				break
			}
			if p < 0 || p > 1 {
				t.Errorf("%s: CDF(%v) = %v out of [0,1]", c.name, x, p)
				break
			}
			prev = p
		}
	}
}

func TestQuantileCDFRoundTrip(t *testing.T) {
	for _, c := range allDistCases() {
		for _, p := range []float64{0.001, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999} {
			x := c.d.Quantile(p)
			back := c.d.CDF(x)
			if math.Abs(back-p) > 1e-7 {
				t.Errorf("%s: CDF(Quantile(%v)) = %v", c.name, p, back)
			}
		}
	}
}

func TestPDFIntegratesToCDF(t *testing.T) {
	// Trapezoidal integration of the PDF should approximate the CDF
	// increment over the same range.
	for _, c := range allDistCases() {
		const n = 4000
		lo, hi := c.lo, c.hi
		h := (hi - lo) / n
		sum := 0.0
		for i := 0; i <= n; i++ {
			x := lo + h*float64(i)
			w := 1.0
			if i == 0 || i == n {
				w = 0.5
			}
			p := c.d.PDF(x)
			if math.IsInf(p, 1) {
				// Integrable singularity at 0 for gamma shape < 1; the
				// grid point contributes nothing meaningful.
				continue
			}
			sum += w * p
		}
		integral := sum * h
		want := c.d.CDF(hi) - c.d.CDF(lo)
		// Gamma with shape < 1 has an integrable singularity at 0 that the
		// trapezoid rule resolves slowly; use a looser bound there.
		tol := 1e-3
		if g, ok := c.d.(Gamma); ok && g.Shape < 1 {
			tol = 3e-2
		}
		if dg, ok := c.d.(DoubleGamma); ok && dg.Shape < 1 {
			tol = 3e-2
		}
		if math.Abs(integral-want) > tol {
			t.Errorf("%s: integral of PDF = %v, CDF increment = %v", c.name, integral, want)
		}
	}
}

func TestSampleMatchesCDF(t *testing.T) {
	// Kolmogorov-Smirnov check of the sampler against the CDF.
	rng := rand.New(rand.NewSource(7))
	const n = 20000
	for _, c := range allDistCases() {
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = c.d.Sample(rng)
		}
		ks := NewECDF(xs).KSDistance(c.d)
		// Critical value at alpha=0.001 is about 1.95/sqrt(n) ≈ 0.0138.
		if ks > 0.02 {
			t.Errorf("%s: KS distance %v too large for its own sampler", c.name, ks)
		}
	}
}

func TestLaplaceAbsIsExponential(t *testing.T) {
	l := Laplace{Scale: 0.9}
	e := l.Abs()
	for _, x := range []float64{0.01, 0.2, 1, 4} {
		// P(|X| <= x) = F(x) - F(-x)
		want := l.CDF(x) - l.CDF(-x)
		if math.Abs(e.CDF(x)-want) > 1e-12 {
			t.Errorf("Abs CDF mismatch at %v: %v vs %v", x, e.CDF(x), want)
		}
	}
}

func TestDoubleGammaAbsConsistent(t *testing.T) {
	d := DoubleGamma{Shape: 0.8, Scale: 1.2}
	g := d.Abs()
	for _, x := range []float64{0.05, 0.4, 1.5, 6} {
		want := d.CDF(x) - d.CDF(-x)
		if math.Abs(g.CDF(x)-want) > 1e-10 {
			t.Errorf("DoubleGamma Abs mismatch at %v: %v vs %v", x, g.CDF(x), want)
		}
	}
}

func TestDoubleGPAbsConsistent(t *testing.T) {
	d := DoubleGP{Shape: 0.25, Scale: 0.7}
	g := d.Abs()
	for _, x := range []float64{0.05, 0.4, 1.5, 6} {
		want := d.CDF(x) - d.CDF(-x)
		if math.Abs(g.CDF(x)-want) > 1e-10 {
			t.Errorf("DoubleGP Abs mismatch at %v: %v vs %v", x, g.CDF(x), want)
		}
	}
}

func TestGPShapeZeroMatchesShiftedExponential(t *testing.T) {
	gp := GeneralizedPareto{Shape: 0, Scale: 0.6, Loc: 1.5}
	exp := Exponential{Scale: 0.6}
	for _, x := range []float64{1.5, 1.6, 2, 3, 10} {
		want := exp.CDF(x - 1.5)
		if math.Abs(gp.CDF(x)-want) > 1e-12 {
			t.Errorf("GP(0) CDF at %v: %v, want %v", x, gp.CDF(x), want)
		}
	}
	// As shape -> 0 the general formula should converge to the exponential.
	small := GeneralizedPareto{Shape: 1e-9, Scale: 0.6, Loc: 1.5}
	for _, p := range []float64{0.1, 0.5, 0.99} {
		if math.Abs(small.Quantile(p)-gp.Quantile(p)) > 1e-5 {
			t.Errorf("GP shape->0 quantile mismatch at p=%v", p)
		}
	}
}

func TestGPNegativeShapeBoundedSupport(t *testing.T) {
	gp := GeneralizedPareto{Shape: -0.4, Scale: 1.0, Loc: 0}
	upper := -gp.Scale / gp.Shape // = 2.5
	if got := gp.CDF(upper + 1); got != 1 {
		t.Errorf("CDF above support bound = %v, want 1", got)
	}
	if got := gp.PDF(upper + 1); got != 0 {
		t.Errorf("PDF above support bound = %v, want 0", got)
	}
	q := gp.Quantile(0.999999)
	if q > upper+1e-6 {
		t.Errorf("Quantile exceeds support bound: %v > %v", q, upper)
	}
}

func TestDistributionMeans(t *testing.T) {
	cases := []struct {
		name string
		d    Distribution
		want float64
	}{
		{"Exponential", Exponential{Scale: 2.5}, 2.5},
		{"Laplace", Laplace{Scale: 3}, 0},
		{"Gamma", Gamma{Shape: 2, Scale: 3}, 6},
		{"GP", GeneralizedPareto{Shape: 0.25, Scale: 1.5, Loc: 1}, 1 + 1.5/0.75},
		{"Gaussian", Gaussian{Mu: -0.7, Sigma: 2}, -0.7},
		{"DoubleGamma", DoubleGamma{Shape: 2, Scale: 3}, 0},
		{"DoubleGP", DoubleGP{Shape: 0.2, Scale: 1}, 0},
	}
	for _, c := range cases {
		if got := c.d.Mean(); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("%s.Mean() = %v, want %v", c.name, got, c.want)
		}
	}
	if !math.IsInf(GeneralizedPareto{Shape: 1.5, Scale: 1}.Mean(), 1) {
		t.Error("GP with shape >= 1 should have infinite mean")
	}
}

func TestSampleMeansConverge(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const n = 200000
	for _, c := range []struct {
		name string
		d    Distribution
	}{
		{"Exponential", Exponential{Scale: 1.8}},
		{"Gamma", Gamma{Shape: 0.5, Scale: 2}},
		{"Gamma>1", Gamma{Shape: 4, Scale: 0.5}},
		{"GP", GeneralizedPareto{Shape: 0.2, Scale: 1, Loc: 0.5}},
	} {
		sum := 0.0
		for i := 0; i < n; i++ {
			sum += c.d.Sample(rng)
		}
		got := sum / n
		want := c.d.Mean()
		if math.Abs(got-want) > 0.05*math.Max(1, want) {
			t.Errorf("%s: sample mean %v, want %v", c.name, got, want)
		}
	}
}

func TestQuantileInvalidProbability(t *testing.T) {
	for _, c := range allDistCases() {
		for _, p := range []float64{-0.5, 1.5, math.NaN()} {
			if got := c.d.Quantile(p); !math.IsNaN(got) {
				t.Errorf("%s.Quantile(%v) = %v, want NaN", c.name, p, got)
			}
		}
	}
}

func TestLaplaceSymmetry(t *testing.T) {
	f := func(raw float64) bool {
		x := math.Mod(math.Abs(raw), 10)
		l := Laplace{Scale: 1.3}
		return math.Abs(l.CDF(x)+l.CDF(-x)-1) < 1e-12 &&
			math.Abs(l.PDF(x)-l.PDF(-x)) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
