package stats

import (
	"math"

	"repro/internal/par"
)

// Par computes the package's hot reductions across P goroutines while
// staying bit-identical to the serial functions: workers fill the same
// fixed 4096-element block partials the serial code computes, into a
// shared scratch slice, and one serial pass combines the partials in
// block order. The zero value (P <= 1) delegates straight to the serial
// functions with no scratch or goroutine cost. A Par is not
// concurrency-safe; each compressor instance owns one.
type Par struct {
	P      int
	sums   []float64
	sums2  []float64
	counts []int
}

func blocks(n int) int { return (n + sumBlock - 1) / sumBlock }

// fill runs fn over every block index on P workers, each worker owning
// a contiguous block range.
func (pp *Par) fill(nb int, fn func(b int)) {
	par.Do(pp.P, func(w int) {
		lo, hi := par.RangeBounds(nb, pp.P, w)
		for b := lo; b < hi; b++ {
			fn(b)
		}
	})
}

func (pp *Par) grow(nb int, two bool) {
	if cap(pp.sums) < nb {
		pp.sums = make([]float64, nb)
	}
	pp.sums = pp.sums[:nb]
	if two {
		if cap(pp.sums2) < nb {
			pp.sums2 = make([]float64, nb)
		}
		pp.sums2 = pp.sums2[:nb]
	}
}

// Mean is Mean at parallelism P.
func (pp *Par) Mean(xs []float64) float64 {
	if pp.P <= 1 || len(xs) < 2*sumBlock {
		return Mean(xs)
	}
	nb := blocks(len(xs))
	pp.grow(nb, false)
	pp.fill(nb, func(b int) {
		lo := b * sumBlock
		hi := lo + sumBlock
		if hi > len(xs) {
			hi = len(xs)
		}
		s := 0.0
		for _, x := range xs[lo:hi] {
			s += x
		}
		pp.sums[b] = s
	})
	total := 0.0
	for _, s := range pp.sums {
		total += s
	}
	return total / float64(len(xs))
}

// MeanAbs is MeanAbs at parallelism P.
func (pp *Par) MeanAbs(xs []float64) float64 {
	if pp.P <= 1 || len(xs) < 2*sumBlock {
		return MeanAbs(xs)
	}
	nb := blocks(len(xs))
	pp.grow(nb, false)
	pp.fill(nb, func(b int) {
		lo := b * sumBlock
		hi := lo + sumBlock
		if hi > len(xs) {
			hi = len(xs)
		}
		s := 0.0
		for _, x := range xs[lo:hi] {
			s += math.Abs(x)
		}
		pp.sums[b] = s
	})
	total := 0.0
	for _, s := range pp.sums {
		total += s
	}
	return total / float64(len(xs))
}

// MeanVarAbs is MeanVarAbs at parallelism P.
func (pp *Par) MeanVarAbs(xs []float64) (mean, variance float64) {
	if pp.P <= 1 || len(xs) < 2*sumBlock {
		return MeanVarAbs(xs)
	}
	nb := blocks(len(xs))
	pp.grow(nb, true)
	pp.fill(nb, func(b int) {
		lo := b * sumBlock
		hi := lo + sumBlock
		if hi > len(xs) {
			hi = len(xs)
		}
		s, s2 := 0.0, 0.0
		for _, x := range xs[lo:hi] {
			a := math.Abs(x)
			s += a
			s2 += a * a
		}
		pp.sums[b], pp.sums2[b] = s, s2
	})
	sum, sumSq := 0.0, 0.0
	for b := range pp.sums {
		sum += pp.sums[b]
		sumSq += pp.sums2[b]
	}
	n := float64(len(xs))
	mean = sum / n
	variance = sumSq/n - mean*mean
	if variance < 0 {
		variance = 0
	}
	return mean, variance
}

// MeanLogAbs is MeanLogAbs at parallelism P.
func (pp *Par) MeanLogAbs(xs []float64) float64 {
	if pp.P <= 1 || len(xs) < 2*sumBlock {
		return MeanLogAbs(xs)
	}
	nb := blocks(len(xs))
	pp.grow(nb, false)
	if cap(pp.counts) < nb {
		pp.counts = make([]int, nb)
	}
	pp.counts = pp.counts[:nb]
	pp.fill(nb, func(b int) {
		lo := b * sumBlock
		hi := lo + sumBlock
		if hi > len(xs) {
			hi = len(xs)
		}
		s, c := 0.0, 0
		for _, x := range xs[lo:hi] {
			a := math.Abs(x)
			if a == 0 {
				continue
			}
			s += math.Log(a)
			c++
		}
		pp.sums[b], pp.counts[b] = s, c
	})
	sum, n := 0.0, 0
	for b := range pp.sums {
		sum += pp.sums[b]
		n += pp.counts[b]
	}
	if n == 0 {
		return math.NaN()
	}
	return sum / float64(n)
}

// Variance is Variance at parallelism P.
func (pp *Par) Variance(xs []float64) float64 {
	if pp.P <= 1 || len(xs) < 2*sumBlock {
		return Variance(xs)
	}
	m := pp.Mean(xs)
	nb := blocks(len(xs))
	pp.grow(nb, false)
	pp.fill(nb, func(b int) {
		lo := b * sumBlock
		hi := lo + sumBlock
		if hi > len(xs) {
			hi = len(xs)
		}
		s := 0.0
		for _, x := range xs[lo:hi] {
			d := x - m
			s += d * d
		}
		pp.sums[b] = s
	})
	total := 0.0
	for _, s := range pp.sums {
		total += s
	}
	return total / float64(len(xs))
}

// MaxAbs is MaxAbs at parallelism P. The maximum is grouping-invariant
// (comparisons against NaN are false in any order), so per-worker maxima
// over contiguous ranges combine to exactly the serial result.
func (pp *Par) MaxAbs(xs []float64) float64 {
	if pp.P <= 1 || len(xs) < 2*sumBlock {
		return MaxAbs(xs)
	}
	pp.grow(pp.P, false)
	maxes := pp.sums[:pp.P]
	par.Do(pp.P, func(w int) {
		lo, hi := par.RangeBounds(len(xs), pp.P, w)
		maxes[w] = MaxAbs(xs[lo:hi])
	})
	max := 0.0
	for _, m := range maxes {
		if m > max {
			max = m
		}
	}
	return max
}

// FitGaussian is FitGaussian at parallelism P.
func (pp *Par) FitGaussian(xs []float64) Gaussian {
	return Gaussian{Mu: pp.Mean(xs), Sigma: math.Sqrt(pp.Variance(xs))}
}

// FitGPExceedance is FitGPExceedance at parallelism P.
func (pp *Par) FitGPExceedance(absXS []float64, loc float64) GPParams {
	if pp.P <= 1 || len(absXS) < 2*sumBlock {
		return FitGPExceedance(absXS, loc)
	}
	nb := blocks(len(absXS))
	pp.grow(nb, true)
	pp.fill(nb, func(b int) {
		lo := b * sumBlock
		hi := lo + sumBlock
		if hi > len(absXS) {
			hi = len(absXS)
		}
		bs, bs2 := 0.0, 0.0
		for _, a := range absXS[lo:hi] {
			s := a - loc
			bs += s
			bs2 += s * s
		}
		pp.sums[b], pp.sums2[b] = bs, bs2
	})
	sum, sumSq := 0.0, 0.0
	for b := range pp.sums {
		sum += pp.sums[b]
		sumSq += pp.sums2[b]
	}
	n := float64(len(absXS))
	mean := sum / n
	variance := sumSq/n - mean*mean
	if variance < 0 {
		variance = 0
	}
	return FitGPMoments(mean, variance)
}

// FitGammaAbs is FitGammaAbs at parallelism P.
func (pp *Par) FitGammaAbs(xs []float64) GammaParams {
	mu := pp.MeanAbs(xs)
	muLog := pp.MeanLogAbs(xs)
	s := math.Log(mu) - muLog
	if !(s > 0) {
		return GammaParams{Shape: math.NaN(), Scale: math.NaN()}
	}
	alpha := (3 - s + math.Sqrt((s-3)*(s-3)+24*s)) / (12 * s)
	return GammaParams{Shape: alpha, Scale: mu / alpha}
}
