package stats

import (
	"math"
	"sort"
)

// sumBlock is the fixed accumulation granularity of every mean/variance
// reduction in this package: partial sums are computed per 4096-element
// block and combined in block order. The block structure is independent
// of how many workers compute the partials, which is what makes the Par
// variants bit-identical to the serial functions at any parallelism.
const sumBlock = 4096

// blockSum sums xs by fixed blocks: one partial per sumBlock elements,
// combined in block order.
func blockSum(xs []float64) float64 {
	total := 0.0
	for lo := 0; lo < len(xs); lo += sumBlock {
		hi := lo + sumBlock
		if hi > len(xs) {
			hi = len(xs)
		}
		s := 0.0
		for _, x := range xs[lo:hi] {
			s += x
		}
		total += s
	}
	return total
}

// Mean returns the arithmetic mean of xs, or NaN for empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	return blockSum(xs) / float64(len(xs))
}

// Variance returns the population variance (divide by n) of xs, matching
// the moment estimators used in the paper's closed-form fitters. It returns
// NaN for empty input.
func Variance(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := Mean(xs)
	total := 0.0
	for lo := 0; lo < len(xs); lo += sumBlock {
		hi := lo + sumBlock
		if hi > len(xs) {
			hi = len(xs)
		}
		s := 0.0
		for _, x := range xs[lo:hi] {
			d := x - m
			s += d * d
		}
		total += s
	}
	return total / float64(len(xs))
}

// SampleVariance returns the unbiased sample variance (divide by n-1) of
// xs, or NaN when fewer than two observations are supplied.
func SampleVariance(xs []float64) float64 {
	if len(xs) < 2 {
		return math.NaN()
	}
	m := Mean(xs)
	sum := 0.0
	for _, x := range xs {
		d := x - m
		sum += d * d
	}
	return sum / float64(len(xs)-1)
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// MeanAbs returns the mean of |x| over xs — the maximum-likelihood scale
// estimate for Laplace-distributed data (Corollary 1.1). It returns NaN for
// empty input.
func MeanAbs(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	total := 0.0
	for lo := 0; lo < len(xs); lo += sumBlock {
		hi := lo + sumBlock
		if hi > len(xs) {
			hi = len(xs)
		}
		s := 0.0
		for _, x := range xs[lo:hi] {
			s += math.Abs(x)
		}
		total += s
	}
	return total / float64(len(xs))
}

// MeanVarAbs returns the mean and population variance of |x| over xs in a
// single pass — the two moments the GP moment-matching fitter consumes.
func MeanVarAbs(xs []float64) (mean, variance float64) {
	if len(xs) == 0 {
		return math.NaN(), math.NaN()
	}
	sum, sumSq := 0.0, 0.0
	for lo := 0; lo < len(xs); lo += sumBlock {
		hi := lo + sumBlock
		if hi > len(xs) {
			hi = len(xs)
		}
		s, s2 := 0.0, 0.0
		for _, x := range xs[lo:hi] {
			a := math.Abs(x)
			s += a
			s2 += a * a
		}
		sum += s
		sumSq += s2
	}
	n := float64(len(xs))
	mean = sum / n
	variance = sumSq/n - mean*mean
	if variance < 0 {
		variance = 0 // guard against catastrophic cancellation
	}
	return mean, variance
}

// MeanLogAbs returns the mean of log|x| over the non-zero entries of xs —
// the sufficient statistic s = log(mean) - mean(log) of the Minka gamma
// fitter. Entries equal to zero are skipped (log 0 would poison the sum;
// in SIDCo they correspond to exactly-zero gradients, which carry no shape
// information). It returns NaN if all entries are zero or xs is empty.
func MeanLogAbs(xs []float64) float64 {
	sum := 0.0
	n := 0
	for lo := 0; lo < len(xs); lo += sumBlock {
		hi := lo + sumBlock
		if hi > len(xs) {
			hi = len(xs)
		}
		s, c := 0.0, 0
		for _, x := range xs[lo:hi] {
			a := math.Abs(x)
			if a == 0 {
				continue
			}
			s += math.Log(a)
			c++
		}
		sum += s
		n += c
	}
	if n == 0 {
		return math.NaN()
	}
	return sum / float64(n)
}

// MinMax returns the minimum and maximum of xs, or (NaN, NaN) for empty
// input.
func MinMax(xs []float64) (min, max float64) {
	if len(xs) == 0 {
		return math.NaN(), math.NaN()
	}
	min, max = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	return min, max
}

// MaxAbs returns the largest absolute value in xs, or NaN for empty input.
func MaxAbs(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	max := 0.0
	for _, x := range xs {
		if a := math.Abs(x); a > max {
			max = a
		}
	}
	return max
}

// Quantile returns the q-quantile (0 <= q <= 1) of xs using linear
// interpolation between order statistics (type-7, the numpy default). The
// input need not be sorted; a copy is sorted internally.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 || math.IsNaN(q) || q < 0 || q > 1 {
		return math.NaN()
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	return QuantileSorted(sorted, q)
}

// QuantileSorted is Quantile for data already sorted ascending; it does
// not allocate.
func QuantileSorted(sorted []float64, q float64) float64 {
	n := len(sorted)
	if n == 0 || math.IsNaN(q) || q < 0 || q > 1 {
		return math.NaN()
	}
	if n == 1 {
		return sorted[0]
	}
	pos := q * float64(n-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Kurtosis returns the excess kurtosis of xs (zero for a Gaussian), used
// by tests and the SID-selection ablation to characterise gradient tails.
func Kurtosis(xs []float64) float64 {
	n := float64(len(xs))
	if n < 2 {
		return math.NaN()
	}
	m := Mean(xs)
	m2, m4 := 0.0, 0.0
	for _, x := range xs {
		d := x - m
		d2 := d * d
		m2 += d2
		m4 += d2 * d2
	}
	m2 /= n
	m4 /= n
	if m2 == 0 {
		return math.NaN()
	}
	return m4/(m2*m2) - 3
}
