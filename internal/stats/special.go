// Package stats provides the statistical substrate for SIDCo: special
// functions, sparsity-inducing distributions (exponential, gamma,
// generalized Pareto) with closed-form fitters, empirical distribution
// utilities, and descriptive statistics.
//
// Everything is implemented from scratch on top of the Go standard library
// (math, math/rand) so the repository is self-contained and offline.
package stats

import (
	"errors"
	"math"
)

// ErrNoConverge is returned by iterative special-function routines that
// exhaust their iteration budget without reaching the requested tolerance.
var ErrNoConverge = errors.New("stats: iteration did not converge")

const (
	specialEps     = 1e-14
	specialMaxIter = 300
)

// RegularizedGammaP computes P(a, x), the regularized lower incomplete
// gamma function: P(a,x) = γ(a,x)/Γ(a) for a > 0, x >= 0.
//
// It uses the series expansion for x < a+1 and the continued fraction for
// x >= a+1 (Numerical Recipes style), which together cover the full domain
// with relative error near machine precision.
func RegularizedGammaP(a, x float64) float64 {
	switch {
	case a <= 0 || math.IsNaN(a) || math.IsNaN(x):
		return math.NaN()
	case x <= 0:
		return 0
	case math.IsInf(x, 1):
		return 1
	}
	if x < a+1 {
		return gammaPSeries(a, x)
	}
	return 1 - gammaQContinuedFraction(a, x)
}

// RegularizedGammaQ computes Q(a, x) = 1 - P(a, x), the regularized upper
// incomplete gamma function.
func RegularizedGammaQ(a, x float64) float64 {
	switch {
	case a <= 0 || math.IsNaN(a) || math.IsNaN(x):
		return math.NaN()
	case x <= 0:
		return 1
	case math.IsInf(x, 1):
		return 0
	}
	if x < a+1 {
		return 1 - gammaPSeries(a, x)
	}
	return gammaQContinuedFraction(a, x)
}

// gammaPSeries evaluates P(a,x) by its power series, accurate for x < a+1.
func gammaPSeries(a, x float64) float64 {
	lg, _ := math.Lgamma(a)
	ap := a
	sum := 1.0 / a
	del := sum
	for i := 0; i < specialMaxIter; i++ {
		ap++
		del *= x / ap
		sum += del
		if math.Abs(del) < math.Abs(sum)*specialEps {
			break
		}
	}
	return sum * math.Exp(-x+a*math.Log(x)-lg)
}

// gammaQContinuedFraction evaluates Q(a,x) by its continued fraction
// (modified Lentz), accurate for x >= a+1.
func gammaQContinuedFraction(a, x float64) float64 {
	const tiny = 1e-300
	lg, _ := math.Lgamma(a)
	b := x + 1 - a
	c := 1 / tiny
	d := 1 / b
	h := d
	for i := 1; i <= specialMaxIter; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = b + an/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < specialEps {
			break
		}
	}
	return math.Exp(-x+a*math.Log(x)-lg) * h
}

// InverseRegularizedGammaP returns x such that P(a, x) = p for a > 0 and
// p in [0, 1). It seeds with the Wilson–Hilferty approximation and polishes
// with Halley-accelerated Newton iterations on P(a,x) - p.
//
// This is the exact quantile route for the gamma-distributed absolute
// gradients of Corollary 1.2; SIDCo's hot path uses the closed-form
// approximation instead, and tests compare the two.
func InverseRegularizedGammaP(a, p float64) float64 {
	switch {
	case a <= 0 || math.IsNaN(a) || math.IsNaN(p) || p < 0 || p >= 1:
		return math.NaN()
	case p == 0:
		return 0
	}
	lg, _ := math.Lgamma(a)

	// Wilson–Hilferty initial guess.
	var x float64
	if a > 0.5 {
		z := NormalQuantile(p)
		t := 1 - 1/(9*a) + z/(3*math.Sqrt(a))
		x = a * t * t * t
	} else {
		// Small-shape seed from the series leading term:
		// P(a,x) ~ x^a / (a*Gamma(a)) for small x.
		x = math.Exp((math.Log(p) + lg + math.Log(a)) / a)
	}
	if x <= 0 || math.IsNaN(x) {
		x = a // fall back to the mean
	}

	for i := 0; i < 60; i++ {
		f := RegularizedGammaP(a, x) - p
		// dP/dx = x^(a-1) e^-x / Gamma(a)
		lpdf := (a-1)*math.Log(x) - x - lg
		df := math.Exp(lpdf)
		if df == 0 {
			break
		}
		// Halley step: second derivative factor ((a-1)/x - 1).
		u := f / df
		step := u / (1 - 0.5*math.Min(1, math.Max(-1, u*((a-1)/x-1))))
		xNew := x - step
		if xNew <= 0 {
			xNew = x / 2
		}
		if math.Abs(xNew-x) < specialEps*math.Max(1, x) {
			return xNew
		}
		x = xNew
	}
	return x
}

// Digamma computes psi(x), the logarithmic derivative of the gamma
// function, for x > 0, via the standard recurrence plus an asymptotic
// expansion in 1/x^2.
func Digamma(x float64) float64 {
	if math.IsNaN(x) || x <= 0 && x == math.Trunc(x) {
		return math.NaN()
	}
	// Reflection for negative non-integer arguments.
	if x < 0 {
		return Digamma(1-x) - math.Pi/math.Tan(math.Pi*x)
	}
	result := 0.0
	for x < 6 {
		result -= 1 / x
		x++
	}
	inv := 1 / x
	inv2 := inv * inv
	// Asymptotic series: ln x - 1/(2x) - sum B_2n/(2n x^2n).
	series := inv2 * (1.0/12 - inv2*(1.0/120-inv2*(1.0/252-inv2*(1.0/240-inv2/132*0.75757575757575757576))))
	return result + math.Log(x) - 0.5*inv - series
}

// NormalQuantile returns the quantile (inverse CDF) of the standard normal
// distribution at probability p in (0, 1), using the Acklam rational
// approximation refined by one Halley step against math.Erfc. Absolute
// error is below 1e-13 across the domain.
func NormalQuantile(p float64) float64 {
	switch {
	case math.IsNaN(p) || p < 0 || p > 1:
		return math.NaN()
	case p == 0:
		return math.Inf(-1)
	case p == 1:
		return math.Inf(1)
	}

	// Acklam coefficients.
	a := [6]float64{-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02, 1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00}
	b := [5]float64{-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02, 6.680131188771972e+01, -1.328068155288572e+01}
	c := [6]float64{-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00, -2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00}
	d := [4]float64{7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00, 3.754408661907416e+00}

	const pLow = 0.02425
	var x float64
	switch {
	case p < pLow:
		q := math.Sqrt(-2 * math.Log(p))
		x = (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p <= 1-pLow:
		q := p - 0.5
		r := q * q
		x = (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		x = -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	}

	// One Halley refinement against the exact CDF.
	e := 0.5*math.Erfc(-x/math.Sqrt2) - p
	u := e * math.Sqrt(2*math.Pi) * math.Exp(x*x/2)
	x = x - u/(1+x*u/2)
	return x
}

// NormalCDF returns the standard normal cumulative distribution function
// at x.
func NormalCDF(x float64) float64 {
	return 0.5 * math.Erfc(-x/math.Sqrt2)
}

// LogGamma returns ln|Γ(x)|, a thin convenience wrapper over math.Lgamma
// that drops the sign (all SIDCo uses have x > 0).
func LogGamma(x float64) float64 {
	lg, _ := math.Lgamma(x)
	return lg
}
